package wire

import "encoding/binary"

// Cluster introspection messages: dodo-ctl (and any monitoring agent)
// asks the central manager for a snapshot of the idle-workstation
// directory and its counters. These extend the paper's protocol — the
// original Dodo had no remote introspection — but follow the same
// framing and idempotency rules as every other request.

// ClusterStatsReq asks the manager for a state snapshot.
type ClusterStatsReq struct{}

// Kind returns the wire type tag.
func (*ClusterStatsReq) Kind() Type       { return TClusterStatsReq }
func (*ClusterStatsReq) payloadSize() int { return 0 }
func (*ClusterStatsReq) encode([]byte) error {
	return nil
}
func (*ClusterStatsReq) decode([]byte) error { return nil }

// HostInfo is one IWD row in a stats snapshot.
type HostInfo struct {
	Addr        string
	Epoch       uint64
	AvailBytes  uint64
	LargestFree uint64
}

func (h HostInfo) encodedSize() int { return 2 + len(h.Addr) + 24 }

// HostCount pairs a host address with a per-host counter value, used
// for the checksum-failure breakdown in keep-alive acks and stats
// snapshots.
type HostCount struct {
	Addr  string
	Count uint64
}

func (h HostCount) encodedSize() int { return 2 + len(h.Addr) + 8 }

// ClusterStatsResp is the manager's snapshot.
type ClusterStatsResp struct {
	Status  Status
	Hosts   []HostInfo
	Regions uint64
	Clients uint64
	// Counters since manager start.
	Allocs, AllocFailures, Frees, StaleDrops, OrphanReclaims uint64
	// Client recovery counters, aggregated from keep-alive acks
	// (including clients since reclaimed).
	ClientDrops, ClientRevalidations, ClientReopens uint64
	// Graceful-reclaim handoff counters (manager side).
	HandoffOffers, HandoffPagesMoved, HandoffAborts uint64
	// Hedge/retry/adopt counters, aggregated from keep-alive acks.
	ClientHandoffAdopts, ClientHedgedReads, ClientHedgeWins uint64
	ClientHedgeWasted, ClientRetryExhausted                 uint64
	// Incarnation is the manager's incarnation number; crash-recovery
	// counters cover the current incarnation only (the directory they
	// describe is soft state rebuilt from inventory re-reports).
	Incarnation      uint64
	InventoryReports uint64
	RebuiltRegions   uint64
	FencedRequests   uint64
	// Checksum-failure totals aggregated from keep-alive acks, with a
	// per-host breakdown by the host that served the corrupt frame.
	ClientChecksumFailures uint64
	CorruptHosts           []HostCount
}

// Kind returns the wire type tag.
func (*ClusterStatsResp) Kind() Type { return TClusterStatsResp }

func (m *ClusterStatsResp) payloadSize() int {
	n := 1 + 2 + 23*8 + 2
	for _, h := range m.Hosts {
		n += h.encodedSize()
	}
	for _, h := range m.CorruptHosts {
		n += h.encodedSize()
	}
	return n
}

func (m *ClusterStatsResp) encode(b []byte) error {
	if len(m.Hosts) > math16max || len(m.CorruptHosts) > math16max {
		return ErrFieldBounds
	}
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Regions)
	binary.BigEndian.PutUint64(b[9:], m.Clients)
	binary.BigEndian.PutUint64(b[17:], m.Allocs)
	binary.BigEndian.PutUint64(b[25:], m.AllocFailures)
	binary.BigEndian.PutUint64(b[33:], m.Frees)
	binary.BigEndian.PutUint64(b[41:], m.StaleDrops)
	binary.BigEndian.PutUint64(b[49:], m.OrphanReclaims)
	binary.BigEndian.PutUint64(b[57:], m.ClientDrops)
	binary.BigEndian.PutUint64(b[65:], m.ClientRevalidations)
	binary.BigEndian.PutUint64(b[73:], m.ClientReopens)
	binary.BigEndian.PutUint64(b[81:], m.HandoffOffers)
	binary.BigEndian.PutUint64(b[89:], m.HandoffPagesMoved)
	binary.BigEndian.PutUint64(b[97:], m.HandoffAborts)
	binary.BigEndian.PutUint64(b[105:], m.ClientHandoffAdopts)
	binary.BigEndian.PutUint64(b[113:], m.ClientHedgedReads)
	binary.BigEndian.PutUint64(b[121:], m.ClientHedgeWins)
	binary.BigEndian.PutUint64(b[129:], m.ClientHedgeWasted)
	binary.BigEndian.PutUint64(b[137:], m.ClientRetryExhausted)
	binary.BigEndian.PutUint64(b[145:], m.Incarnation)
	binary.BigEndian.PutUint64(b[153:], m.InventoryReports)
	binary.BigEndian.PutUint64(b[161:], m.RebuiltRegions)
	binary.BigEndian.PutUint64(b[169:], m.FencedRequests)
	binary.BigEndian.PutUint64(b[177:], m.ClientChecksumFailures)
	binary.BigEndian.PutUint16(b[185:], uint16(len(m.Hosts)))
	at := 187
	for _, h := range m.Hosts {
		n, err := putString(b[at:], h.Addr)
		if err != nil {
			return err
		}
		at += n
		binary.BigEndian.PutUint64(b[at:], h.Epoch)
		binary.BigEndian.PutUint64(b[at+8:], h.AvailBytes)
		binary.BigEndian.PutUint64(b[at+16:], h.LargestFree)
		at += 24
	}
	binary.BigEndian.PutUint16(b[at:], uint16(len(m.CorruptHosts)))
	at += 2
	for _, h := range m.CorruptHosts {
		n, err := putString(b[at:], h.Addr)
		if err != nil {
			return err
		}
		at += n
		binary.BigEndian.PutUint64(b[at:], h.Count)
		at += 8
	}
	return nil
}

func (m *ClusterStatsResp) decode(b []byte) error {
	if len(b) < 189 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Regions = binary.BigEndian.Uint64(b[1:])
	m.Clients = binary.BigEndian.Uint64(b[9:])
	m.Allocs = binary.BigEndian.Uint64(b[17:])
	m.AllocFailures = binary.BigEndian.Uint64(b[25:])
	m.Frees = binary.BigEndian.Uint64(b[33:])
	m.StaleDrops = binary.BigEndian.Uint64(b[41:])
	m.OrphanReclaims = binary.BigEndian.Uint64(b[49:])
	m.ClientDrops = binary.BigEndian.Uint64(b[57:])
	m.ClientRevalidations = binary.BigEndian.Uint64(b[65:])
	m.ClientReopens = binary.BigEndian.Uint64(b[73:])
	m.HandoffOffers = binary.BigEndian.Uint64(b[81:])
	m.HandoffPagesMoved = binary.BigEndian.Uint64(b[89:])
	m.HandoffAborts = binary.BigEndian.Uint64(b[97:])
	m.ClientHandoffAdopts = binary.BigEndian.Uint64(b[105:])
	m.ClientHedgedReads = binary.BigEndian.Uint64(b[113:])
	m.ClientHedgeWins = binary.BigEndian.Uint64(b[121:])
	m.ClientHedgeWasted = binary.BigEndian.Uint64(b[129:])
	m.ClientRetryExhausted = binary.BigEndian.Uint64(b[137:])
	m.Incarnation = binary.BigEndian.Uint64(b[145:])
	m.InventoryReports = binary.BigEndian.Uint64(b[153:])
	m.RebuiltRegions = binary.BigEndian.Uint64(b[161:])
	m.FencedRequests = binary.BigEndian.Uint64(b[169:])
	m.ClientChecksumFailures = binary.BigEndian.Uint64(b[177:])
	count := int(binary.BigEndian.Uint16(b[185:]))
	at := 187
	m.Hosts = make([]HostInfo, 0, count)
	for i := 0; i < count; i++ {
		addr, n, err := getString(b[at:])
		if err != nil {
			return err
		}
		at += n
		if len(b) < at+24 {
			return ErrTruncated
		}
		m.Hosts = append(m.Hosts, HostInfo{
			Addr:        addr,
			Epoch:       binary.BigEndian.Uint64(b[at:]),
			AvailBytes:  binary.BigEndian.Uint64(b[at+8:]),
			LargestFree: binary.BigEndian.Uint64(b[at+16:]),
		})
		at += 24
	}
	if len(b) < at+2 {
		return ErrTruncated
	}
	ccount := int(binary.BigEndian.Uint16(b[at:]))
	at += 2
	m.CorruptHosts = nil
	if ccount > 0 {
		m.CorruptHosts = make([]HostCount, 0, ccount)
	}
	for i := 0; i < ccount; i++ {
		addr, n, err := getString(b[at:])
		if err != nil {
			return err
		}
		at += n
		if len(b) < at+8 {
			return ErrTruncated
		}
		m.CorruptHosts = append(m.CorruptHosts, HostCount{Addr: addr, Count: binary.BigEndian.Uint64(b[at:])})
		at += 8
	}
	return nil
}
