package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, seq uint32, msg Message) Message {
	t.Helper()
	frame, err := Encode(seq, msg)
	if err != nil {
		t.Fatalf("Encode(%T) error: %v", msg, err)
	}
	h, got, err := Decode(frame)
	if err != nil {
		t.Fatalf("Decode(%T) error: %v", msg, err)
	}
	if h.Seq != seq {
		t.Fatalf("decoded seq = %d, want %d", h.Seq, seq)
	}
	if h.Type != msg.Kind() {
		t.Fatalf("decoded type = %v, want %v", h.Type, msg.Kind())
	}
	return got
}

func TestRoundTripAllMessages(t *testing.T) {
	region := Region{HostAddr: "10.0.0.7:7070", RegionID: 99, PoolOffset: 4096, Length: 1 << 20, Epoch: 12}
	key := RegionKey{Inode: 123456, Offset: 789, ClientID: 3}
	msgs := []Message{
		&AllocReq{Key: key, Length: 1 << 20},
		&AllocResp{Status: StatusOK, Region: region},
		&FreeReq{Key: key},
		&FreeResp{Status: StatusNotFound},
		&CheckAllocReq{Key: key},
		&CheckAllocResp{Status: StatusStale, Fresh: true, Region: region},
		&KeepAlive{ClientID: 77},
		&KeepAliveAck{ClientID: 77, Drops: 3, Revalidations: 2, Reopens: 1,
			HandoffAdopts: 4, HedgedReads: 9, HedgeWins: 5, HedgeWasted: 3, RetryExhausted: 1},
		&HostStatus{HostAddr: "host3:9000", State: HostIdle, Epoch: 5, AvailBytes: 100 << 20, LargestFree: 64 << 20},
		&HostStatusAck{Status: StatusOK},
		&IMDAllocReq{RegionID: 42, Length: 8192},
		&IMDAllocResp{Status: StatusOK, PoolOffset: 12288, Epoch: 5, AvailBytes: 99 << 20, LargestFree: 50 << 20},
		&IMDFreeReq{RegionID: 42},
		&IMDFreeResp{Status: StatusOK, Epoch: 5, AvailBytes: 100 << 20, LargestFree: 64 << 20},
		&ReadReq{RegionID: 42, Epoch: 5, Offset: 100, Length: 8192},
		&WriteReq{RegionID: 42, Epoch: 5, Offset: 100, Length: 8192, TransferID: 9001, WriteSeq: 17},
		&DataResp{Status: StatusOK, Count: 8192, TransferID: 9001},
		&BulkOffer{TransferID: 9001, TotalLen: 1 << 20, ChunkSize: 1400},
		&BulkAccept{TransferID: 9001, Window: 32, Status: StatusOK},
		&BulkData{TransferID: 9001, Seq: 17, Payload: []byte("hello dodo")},
		&BulkNack{TransferID: 9001, Missing: []uint32{3, 5, 8}},
		&BulkDone{TransferID: 9001, Status: StatusOK},
		&HandoffOffer{HostAddr: "host3:9000", Epoch: 5, Regions: []HandoffRegion{
			{RegionID: 42, Length: 8192, Reads: 31},
			{RegionID: 43, Length: 4096, Reads: 7},
		}},
		&HandoffAccept{Status: StatusOK, Grants: []HandoffGrant{
			{OldRegionID: 42, Target: region},
		}},
		&HandoffPage{RegionID: 99, Epoch: 12, Length: 8192, TransferID: 9002, Crc: 0xCAFEF00D},
		&HandoffDone{HostAddr: "host3:9000", OldRegionID: 42, Status: StatusBusy},
		&AllocResp{Status: StatusOK, Incarnation: 3, Region: region},
		&CheckAllocResp{Status: StatusOK, Incarnation: 3, Region: region},
		&KeepAlive{ClientID: 77, Incarnation: 3},
		&KeepAliveAck{ClientID: 77, ChecksumFailures: 2,
			CorruptHosts: []HostCount{{Addr: "host3:9000", Count: 2}}},
		&HostStatus{HostAddr: "host3:9000", State: HostIdle, Epoch: 5,
			AvailBytes: 100 << 20, LargestFree: 64 << 20, Incarnation: 3},
		&HostStatusAck{Status: StatusStale, Incarnation: 4},
		&IMDAllocReq{RegionID: 42, Length: 8192, Key: key, Client: "client-3:0"},
		&WriteReq{RegionID: 42, Epoch: 5, Offset: 100, Length: 8192, TransferID: 9001, WriteSeq: 17, Crc: 0x1234ABCD},
		&DataResp{Status: StatusOK, Count: 8192, TransferID: 9001, Crc: 0xFEEDFACE},
		&InventoryReport{HostAddr: "host3:9000", Epoch: 5, Incarnation: 2,
			AvailBytes: 90 << 20, LargestFree: 30 << 20,
			Regions: []InventoryRegion{
				{RegionID: 1<<32 | 7, PoolOffset: 4096, Length: 8192, WriteSeq: 3, Key: key, Client: "client-3:0"},
				{RegionID: 1<<32 | 8, PoolOffset: 16384, Length: 4096, Key: RegionKey{Inode: 9, Offset: -8, ClientID: 1}},
			}},
		&InventoryAck{Status: StatusOK, Incarnation: 2},
	}
	for _, msg := range msgs {
		got := roundTrip(t, 12345, msg)
		if !reflect.DeepEqual(got, msg) {
			t.Errorf("%T round-trip mismatch:\n got  %+v\n want %+v", msg, got, msg)
		}
	}
}

func TestRoundTripEmptyVariants(t *testing.T) {
	msgs := []Message{
		&BulkData{TransferID: 1, Seq: 0, Payload: nil},
		&BulkNack{TransferID: 1, Missing: nil},
		&HostStatus{HostAddr: "", State: HostBusy},
		&AllocResp{Status: StatusNoMem, Region: Region{}},
	}
	for _, msg := range msgs {
		got := roundTrip(t, 0, msg)
		// BulkData normalizes nil payloads to empty slices on decode;
		// compare contents, not representation.
		switch want := msg.(type) {
		case *BulkData:
			g := got.(*BulkData)
			if g.TransferID != want.TransferID || g.Seq != want.Seq || len(g.Payload) != 0 {
				t.Errorf("BulkData round-trip = %+v, want %+v", g, want)
			}
		case *BulkNack:
			g := got.(*BulkNack)
			if g.TransferID != want.TransferID || len(g.Missing) != 0 {
				t.Errorf("BulkNack round-trip = %+v, want %+v", g, want)
			}
		default:
			if !reflect.DeepEqual(got, msg) {
				t.Errorf("%T round-trip mismatch: got %+v want %+v", msg, got, msg)
			}
		}
	}
}

func TestHeaderRejectsBadMagic(t *testing.T) {
	frame, _ := Encode(1, &KeepAlive{ClientID: 1})
	frame[0] = 0xAB
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("Decode with bad magic = %v, want ErrBadMagic", err)
	}
}

func TestHeaderRejectsBadVersion(t *testing.T) {
	frame, _ := Encode(1, &KeepAlive{ClientID: 1})
	frame[2] = 200
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("Decode with bad version = %v, want ErrBadVersion", err)
	}
}

func TestHeaderRejectsUnknownType(t *testing.T) {
	frame, _ := Encode(1, &KeepAlive{ClientID: 1})
	frame[3] = uint8(typeSentinel)
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadType) {
		t.Fatalf("Decode with unknown type = %v, want ErrBadType", err)
	}
	frame[3] = uint8(TInvalid)
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadType) {
		t.Fatalf("Decode with invalid type = %v, want ErrBadType", err)
	}
}

func TestHeaderRejectsShortFrame(t *testing.T) {
	frame, _ := Encode(1, &ReadReq{RegionID: 1, Length: 10})
	if _, _, err := Decode(frame[:len(frame)-4]); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("Decode of short frame = %v, want ErrShortFrame", err)
	}
	if _, err := ParseHeader(frame[:5]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("ParseHeader of 5 bytes = %v, want ErrTruncated", err)
	}
}

func TestHeaderRejectsOversizePayload(t *testing.T) {
	var buf [HeaderSize]byte
	PutHeader(buf[:], Header{Type: TBulkData, Seq: 1, PayloadLen: MaxPayload + 1})
	if _, err := ParseHeader(buf[:]); !errors.Is(err, ErrOversize) {
		t.Fatalf("ParseHeader oversize = %v, want ErrOversize", err)
	}
}

func TestTruncatedPayloadsRejected(t *testing.T) {
	// For every message type, claim a zero-length payload where the
	// decoder needs bytes; every fixed-size decoder must fail cleanly.
	for ty := TAllocReq; ty < typeSentinel; ty++ {
		msg := newMessage(ty)
		if msg == nil {
			t.Fatalf("newMessage(%v) = nil", ty)
		}
		if msg.payloadSize() == 0 {
			continue
		}
		frame := make([]byte, HeaderSize)
		PutHeader(frame, Header{Type: ty, Seq: 0, PayloadLen: 0})
		if _, _, err := Decode(frame); err == nil {
			t.Errorf("Decode(%v) with empty payload succeeded, want error", ty)
		}
	}
}

func TestHostAddrTooLongRejected(t *testing.T) {
	long := string(bytes.Repeat([]byte{'a'}, math.MaxUint16+1))
	_, err := Encode(1, &HostStatus{HostAddr: long})
	if !errors.Is(err, ErrFieldBounds) {
		t.Fatalf("Encode with oversize addr = %v, want ErrFieldBounds", err)
	}
}

func TestBulkNackTooManyMissingRejected(t *testing.T) {
	nack := &BulkNack{TransferID: 1, Missing: make([]uint32, math32max+1)}
	if _, err := Encode(1, nack); err == nil {
		t.Fatal("Encode of oversized NACK succeeded, want error")
	}
}

// TestUint16CountsRejectExactly65536: element counts that travel as
// uint16 must refuse exactly 1<<16 entries — that length would pass a
// `> 1<<16` bound yet wrap to a count of 0 on the wire, silently
// dropping the whole list on decode. Encode's MaxPayload check happens
// to refuse these today too, so the encoders are exercised directly:
// the count bound must hold on its own.
func TestUint16CountsRejectExactly65536(t *testing.T) {
	cases := []struct {
		name string
		msg  Message
	}{
		{"HandoffOffer", &HandoffOffer{HostAddr: "a", Epoch: 1, Regions: make([]HandoffRegion, 1<<16)}},
		{"HandoffAccept", &HandoffAccept{Status: StatusOK, Grants: make([]HandoffGrant, 1<<16)}},
		{"ClusterStatsResp", &ClusterStatsResp{Status: StatusOK, Hosts: make([]HostInfo, 1<<16)}},
		{"ClusterStatsResp/corrupt", &ClusterStatsResp{Status: StatusOK, CorruptHosts: make([]HostCount, 1<<16)}},
		{"KeepAliveAck", &KeepAliveAck{ClientID: 1, CorruptHosts: make([]HostCount, 1<<16)}},
		{"InventoryReport", &InventoryReport{HostAddr: "a", Regions: make([]InventoryRegion, 1<<16)}},
	}
	for _, tc := range cases {
		if err := tc.msg.encode(make([]byte, tc.msg.payloadSize())); !errors.Is(err, ErrFieldBounds) {
			t.Errorf("%s.encode with 65536 elements = %v, want ErrFieldBounds", tc.name, err)
		}
		if _, err := Encode(1, tc.msg); err == nil {
			t.Errorf("Encode(%s) with 65536 elements succeeded, want error", tc.name)
		}
	}
}

func TestTypeAndStatusStrings(t *testing.T) {
	if TAllocReq.String() != "alloc-req" {
		t.Errorf("TAllocReq.String() = %q", TAllocReq.String())
	}
	if Type(250).String() != "wire.Type(250)" {
		t.Errorf("unknown type String() = %q", Type(250).String())
	}
	if StatusNoMem.String() != "no-memory" {
		t.Errorf("StatusNoMem.String() = %q", StatusNoMem.String())
	}
	if Status(250).String() != "wire.Status(250)" {
		t.Errorf("unknown status String() = %q", Status(250).String())
	}
	if HostIdle.String() != "idle" || HostBusy.String() != "busy" {
		t.Error("HostState strings wrong")
	}
	if HostState(9).String() != "wire.HostState(9)" {
		t.Errorf("unknown host state String() = %q", HostState(9).String())
	}
}

func TestRegionKeyString(t *testing.T) {
	k := RegionKey{Inode: 1, Offset: 2, ClientID: 3}
	if k.String() != "region(1@2/c3)" {
		t.Errorf("RegionKey.String() = %q", k.String())
	}
}

// Property: AllocReq round-trips for arbitrary keys and lengths.
func TestPropertyAllocReqRoundTrip(t *testing.T) {
	f := func(inode uint64, offset int64, client uint32, length uint64, seq uint32) bool {
		in := &AllocReq{Key: RegionKey{Inode: inode, Offset: offset, ClientID: client}, Length: length}
		frame, err := Encode(seq, in)
		if err != nil {
			return false
		}
		h, out, err := Decode(frame)
		if err != nil || h.Seq != seq {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: BulkData round-trips arbitrary payloads byte-for-byte.
func TestPropertyBulkDataRoundTrip(t *testing.T) {
	f := func(id uint64, seq32 uint32, payload []byte) bool {
		if len(payload) > MaxPayload-12 {
			payload = payload[:MaxPayload-12]
		}
		in := &BulkData{TransferID: id, Seq: seq32, Payload: payload}
		frame, err := Encode(0, in)
		if err != nil {
			return false
		}
		_, out, err := Decode(frame)
		if err != nil {
			return false
		}
		got := out.(*BulkData)
		return got.TransferID == id && got.Seq == seq32 && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary garbage never panics and either errs or
// yields a message that re-encodes.
func TestPropertyDecodeGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("Decode panicked on %x: %v", garbage, r)
			}
		}()
		h, msg, err := Decode(garbage)
		if err != nil {
			return true
		}
		_, err = Encode(h.Seq, msg)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: region descriptors round-trip with arbitrary host addresses.
func TestPropertyRegionRoundTrip(t *testing.T) {
	f := func(addr string, id, off, length, epoch uint64) bool {
		if len(addr) > math.MaxUint16 {
			addr = addr[:math.MaxUint16]
		}
		in := &AllocResp{Status: StatusOK, Region: Region{HostAddr: addr, RegionID: id, PoolOffset: off, Length: length, Epoch: epoch}}
		frame, err := Encode(0, in)
		if err != nil {
			return false
		}
		_, out, err := Decode(frame)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeReadReq(b *testing.B) {
	msg := &ReadReq{RegionID: 42, Epoch: 5, Offset: 100, Length: 8192}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(uint32(i), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBulkData8KB(b *testing.B) {
	frame, err := Encode(1, &BulkData{TransferID: 1, Seq: 1, Payload: make([]byte, 8192)})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
