package wire

import "encoding/binary"

// Graceful-reclaim handoff sub-protocol. When a workstation owner
// returns, the draining imd does not simply drop its cached pages: it
// offers its hottest regions to the manager (HandoffOffer), the
// manager picks target imds, pre-allocates destination regions and
// answers with grants (HandoffAccept), the draining imd pushes each
// page to its target over the bulk path (HandoffPage, answered with
// DataResp), and finally reports per-region outcomes (HandoffDone) so
// the manager can atomically repoint its region directory. All of this
// happens inside the drain grace window; whatever does not fit is
// aborted and falls back to client-side disk repopulation.

// HandoffRegion describes one resident region a draining imd offers to
// move, with its observed read count so the manager can honor
// hottest-first ordering.
type HandoffRegion struct {
	RegionID uint64
	Length   uint64
	Reads    uint64
}

const handoffRegionSize = 24

// HandoffGrant pairs a draining imd's region with the destination
// region the manager pre-allocated for it on a peer imd.
type HandoffGrant struct {
	// OldRegionID is the region id on the draining imd.
	OldRegionID uint64
	// Target is the pre-allocated destination region descriptor.
	Target Region
}

// HandoffOffer is the draining imd's offer to the manager: its
// identity (address + epoch, so a stale offer from a previous
// incarnation is refused) and its resident regions, hottest first.
type HandoffOffer struct {
	HostAddr string
	Epoch    uint64
	Regions  []HandoffRegion
}

func (*HandoffOffer) Kind() Type { return THandoffOffer }
func (m *HandoffOffer) payloadSize() int {
	return 2 + len(m.HostAddr) + 8 + 2 + handoffRegionSize*len(m.Regions)
}
func (m *HandoffOffer) encode(b []byte) error {
	if len(m.Regions) > math16max {
		return ErrFieldBounds
	}
	n, err := putString(b, m.HostAddr)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint64(b[n:], m.Epoch)
	binary.BigEndian.PutUint16(b[n+8:], uint16(len(m.Regions)))
	at := n + 10
	for _, r := range m.Regions {
		binary.BigEndian.PutUint64(b[at:], r.RegionID)
		binary.BigEndian.PutUint64(b[at+8:], r.Length)
		binary.BigEndian.PutUint64(b[at+16:], r.Reads)
		at += handoffRegionSize
	}
	return nil
}
func (m *HandoffOffer) decode(b []byte) error {
	addr, n, err := getString(b)
	if err != nil {
		return err
	}
	if len(b) < n+10 {
		return ErrTruncated
	}
	m.HostAddr = addr
	m.Epoch = binary.BigEndian.Uint64(b[n:])
	count := int(binary.BigEndian.Uint16(b[n+8:]))
	at := n + 10
	if len(b) < at+handoffRegionSize*count {
		return ErrTruncated
	}
	m.Regions = make([]HandoffRegion, 0, count)
	for i := 0; i < count; i++ {
		m.Regions = append(m.Regions, HandoffRegion{
			RegionID: binary.BigEndian.Uint64(b[at:]),
			Length:   binary.BigEndian.Uint64(b[at+8:]),
			Reads:    binary.BigEndian.Uint64(b[at+16:]),
		})
		at += handoffRegionSize
	}
	return nil
}

// HandoffAccept is the manager's answer: one grant per region it found
// a target for (regions it could not place are simply absent and die
// with the drain). StatusStale means the manager does not consider the
// sender a draining host — e.g. the offer outlived the grace window.
type HandoffAccept struct {
	Status Status
	Grants []HandoffGrant
}

func (*HandoffAccept) Kind() Type { return THandoffAccept }
func (m *HandoffAccept) payloadSize() int {
	n := 1 + 2
	for _, g := range m.Grants {
		n += 8 + g.Target.encodedSize()
	}
	return n
}
func (m *HandoffAccept) encode(b []byte) error {
	if len(m.Grants) > math16max {
		return ErrFieldBounds
	}
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint16(b[1:], uint16(len(m.Grants)))
	at := 3
	for _, g := range m.Grants {
		binary.BigEndian.PutUint64(b[at:], g.OldRegionID)
		at += 8
		n, err := putRegion(b[at:], g.Target)
		if err != nil {
			return err
		}
		at += n
	}
	return nil
}
func (m *HandoffAccept) decode(b []byte) error {
	if len(b) < 3 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	count := int(binary.BigEndian.Uint16(b[1:]))
	at := 3
	m.Grants = make([]HandoffGrant, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < at+8 {
			return ErrTruncated
		}
		old := binary.BigEndian.Uint64(b[at:])
		at += 8
		r, n, err := getRegion(b[at:])
		if err != nil {
			return err
		}
		at += n
		m.Grants = append(m.Grants, HandoffGrant{OldRegionID: old, Target: r})
	}
	return nil
}

// HandoffPage announces one page push from the draining imd to the
// target imd: the destination region (already allocated by the
// manager), the target's expected epoch, the byte length, and the bulk
// TransferID the data travels under. The target answers with DataResp,
// exactly like a client write.
type HandoffPage struct {
	RegionID   uint64
	Epoch      uint64
	Length     uint64
	TransferID uint64
	// Crc is the CRC32C of the pushed page bytes; the target imd
	// refuses the page when the received data does not match, so a
	// frame corrupted in flight can never become the authoritative
	// handoff copy. Zero means unchecked.
	Crc uint32
}

func (*HandoffPage) Kind() Type       { return THandoffPage }
func (*HandoffPage) payloadSize() int { return 36 }
func (m *HandoffPage) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.RegionID)
	binary.BigEndian.PutUint64(b[8:], m.Epoch)
	binary.BigEndian.PutUint64(b[16:], m.Length)
	binary.BigEndian.PutUint64(b[24:], m.TransferID)
	binary.BigEndian.PutUint32(b[32:], m.Crc)
	return nil
}
func (m *HandoffPage) decode(b []byte) error {
	if len(b) < 36 {
		return ErrTruncated
	}
	m.RegionID = binary.BigEndian.Uint64(b[0:])
	m.Epoch = binary.BigEndian.Uint64(b[8:])
	m.Length = binary.BigEndian.Uint64(b[16:])
	m.TransferID = binary.BigEndian.Uint64(b[24:])
	m.Crc = binary.BigEndian.Uint32(b[32:])
	return nil
}

// HandoffDone reports one region's handoff outcome to the manager.
// StatusOK: the page landed on its target and the manager must repoint
// the region directory entry. Any other status: the move was aborted
// (grace window expired, target unreachable) and the manager should
// free the pre-allocated target region.
type HandoffDone struct {
	HostAddr    string
	OldRegionID uint64
	Status      Status
}

func (*HandoffDone) Kind() Type         { return THandoffDone }
func (m *HandoffDone) payloadSize() int { return 2 + len(m.HostAddr) + 9 }
func (m *HandoffDone) encode(b []byte) error {
	n, err := putString(b, m.HostAddr)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint64(b[n:], m.OldRegionID)
	b[n+8] = uint8(m.Status)
	return nil
}
func (m *HandoffDone) decode(b []byte) error {
	addr, n, err := getString(b)
	if err != nil {
		return err
	}
	if len(b) < n+9 {
		return ErrTruncated
	}
	m.HostAddr = addr
	m.OldRegionID = binary.BigEndian.Uint64(b[n:])
	m.Status = Status(b[n+8])
	return nil
}
