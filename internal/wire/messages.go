package wire

import (
	"encoding/binary"
	"fmt"
)

// Message is implemented by every payload type in the protocol.
type Message interface {
	// Kind returns the wire type tag of the message.
	Kind() Type
	// payloadSize returns the exact encoded payload length.
	payloadSize() int
	// encode writes the payload into buf (already payloadSize() long).
	encode(buf []byte) error
	// decode parses the payload from buf.
	decode(buf []byte) error
}

// Encode serializes msg into a standalone frame with the given sequence
// number.
func Encode(seq uint32, msg Message) ([]byte, error) {
	n := msg.payloadSize()
	if n > MaxPayload {
		return nil, ErrOversize
	}
	frame := make([]byte, HeaderSize+n)
	PutHeader(frame, Header{Type: msg.Kind(), Seq: seq, PayloadLen: uint32(n)})
	if err := msg.encode(frame[HeaderSize:]); err != nil {
		return nil, err
	}
	return frame, nil
}

// Decode parses a frame into its header and typed message.
func Decode(frame []byte) (Header, Message, error) {
	h, err := ParseHeader(frame)
	if err != nil {
		return Header{}, nil, err
	}
	msg := newMessage(h.Type)
	if msg == nil {
		return Header{}, nil, ErrBadType
	}
	if err := msg.decode(frame[HeaderSize : HeaderSize+int(h.PayloadLen)]); err != nil {
		return Header{}, nil, fmt.Errorf("wire: decoding %v: %w", h.Type, err)
	}
	return h, msg, nil
}

func newMessage(t Type) Message {
	switch t {
	case TAllocReq:
		return &AllocReq{}
	case TAllocResp:
		return &AllocResp{}
	case TFreeReq:
		return &FreeReq{}
	case TFreeResp:
		return &FreeResp{}
	case TCheckAllocReq:
		return &CheckAllocReq{}
	case TCheckAllocResp:
		return &CheckAllocResp{}
	case TKeepAlive:
		return &KeepAlive{}
	case TKeepAliveAck:
		return &KeepAliveAck{}
	case THostStatus:
		return &HostStatus{}
	case THostStatusAck:
		return &HostStatusAck{}
	case TIMDAllocReq:
		return &IMDAllocReq{}
	case TIMDAllocResp:
		return &IMDAllocResp{}
	case TIMDFreeReq:
		return &IMDFreeReq{}
	case TIMDFreeResp:
		return &IMDFreeResp{}
	case TReadReq:
		return &ReadReq{}
	case TWriteReq:
		return &WriteReq{}
	case TDataResp:
		return &DataResp{}
	case TBulkOffer:
		return &BulkOffer{}
	case TBulkAccept:
		return &BulkAccept{}
	case TBulkData:
		return &BulkData{}
	case TBulkNack:
		return &BulkNack{}
	case TBulkDone:
		return &BulkDone{}
	case TClusterStatsReq:
		return &ClusterStatsReq{}
	case TClusterStatsResp:
		return &ClusterStatsResp{}
	case THandoffOffer:
		return &HandoffOffer{}
	case THandoffAccept:
		return &HandoffAccept{}
	case THandoffPage:
		return &HandoffPage{}
	case THandoffDone:
		return &HandoffDone{}
	case TInventoryReport:
		return &InventoryReport{}
	case TInventoryAck:
		return &InventoryAck{}
	case TReadBatchReq:
		return &ReadBatchReq{}
	case TReadBatchResp:
		return &ReadBatchResp{}
	}
	return nil
}

// AllocReq asks the central manager to allocate a remote region of Length
// bytes keyed by Key (client -> cmd).
type AllocReq struct {
	Key    RegionKey
	Length uint64
}

func (*AllocReq) Kind() Type       { return TAllocReq }
func (*AllocReq) payloadSize() int { return regionKeySize + 8 }
func (m *AllocReq) encode(b []byte) error {
	n := putRegionKey(b, m.Key)
	binary.BigEndian.PutUint64(b[n:], m.Length)
	return nil
}
func (m *AllocReq) decode(b []byte) error {
	k, n, err := getRegionKey(b)
	if err != nil {
		return err
	}
	if len(b) < n+8 {
		return ErrTruncated
	}
	m.Key = k
	m.Length = binary.BigEndian.Uint64(b[n:])
	return nil
}

// AllocResp carries the allocation result (cmd -> client). Incarnation
// is the responding manager's incarnation number; clients track the
// highest incarnation seen and discard responses stamped with an older
// one, so a delayed pre-crash grant can never be acted on after the
// manager restarted. Zero means the responder predates incarnation
// stamping and is accepted unconditionally.
type AllocResp struct {
	Status      Status
	Incarnation uint64
	Region      Region
	// HostCaps is the capability set the hosting imd advertised, relayed
	// so the client knows which read fast paths this host understands.
	// Encoded as an optional trailing field: zero is omitted, and frames
	// from older managers decode as zero (legacy host).
	HostCaps Caps
}

func (*AllocResp) Kind() Type { return TAllocResp }
func (m *AllocResp) payloadSize() int {
	n := 9 + m.Region.encodedSize()
	if m.HostCaps != 0 {
		n += 4
	}
	return n
}
func (m *AllocResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Incarnation)
	n, err := putRegion(b[9:], m.Region)
	if err != nil {
		return err
	}
	if m.HostCaps != 0 {
		binary.BigEndian.PutUint32(b[9+n:], uint32(m.HostCaps))
	}
	return nil
}
func (m *AllocResp) decode(b []byte) error {
	if len(b) < 9 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Incarnation = binary.BigEndian.Uint64(b[1:])
	r, n, err := getRegion(b[9:])
	if err != nil {
		return err
	}
	m.Region = r
	m.HostCaps = 0
	if len(b) >= 9+n+4 {
		m.HostCaps = Caps(binary.BigEndian.Uint32(b[9+n:]))
	}
	return nil
}

// FreeReq releases the region with the given key (client -> cmd).
type FreeReq struct {
	Key RegionKey
}

func (*FreeReq) Kind() Type       { return TFreeReq }
func (*FreeReq) payloadSize() int { return regionKeySize }
func (m *FreeReq) encode(b []byte) error {
	putRegionKey(b, m.Key)
	return nil
}
func (m *FreeReq) decode(b []byte) error {
	k, _, err := getRegionKey(b)
	m.Key = k
	return err
}

// FreeResp acknowledges a free (cmd -> client), stamped with the
// manager incarnation like every other manager response.
type FreeResp struct {
	Status      Status
	Incarnation uint64
}

func (*FreeResp) Kind() Type       { return TFreeResp }
func (*FreeResp) payloadSize() int { return 9 }
func (m *FreeResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Incarnation)
	return nil
}
func (m *FreeResp) decode(b []byte) error {
	if len(b) < 9 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Incarnation = binary.BigEndian.Uint64(b[1:])
	return nil
}

// CheckAllocReq asks the cmd whether a region is still valid (§4.3
// checkAlloc), returning its descriptor if so.
type CheckAllocReq struct {
	Key RegionKey
}

func (*CheckAllocReq) Kind() Type       { return TCheckAllocReq }
func (*CheckAllocReq) payloadSize() int { return regionKeySize }
func (m *CheckAllocReq) encode(b []byte) error {
	putRegionKey(b, m.Key)
	return nil
}
func (m *CheckAllocReq) decode(b []byte) error {
	k, _, err := getRegionKey(b)
	m.Key = k
	return err
}

// CheckAllocResp returns the region descriptor if the epoch check passed.
// Fresh marks a descriptor whose backing region was populated by a
// graceful-reclaim handoff: the new host already holds every byte the
// client had confirmed, so a recovering client with no unconfirmed
// writes may adopt the mapping without repopulating from disk.
type CheckAllocResp struct {
	Status      Status
	Fresh       bool
	Incarnation uint64
	Region      Region
	// HostCaps relays the hosting imd's capability set, exactly as in
	// AllocResp: optional trailing field, zero/absent means legacy host.
	HostCaps Caps
}

func (*CheckAllocResp) Kind() Type { return TCheckAllocResp }
func (m *CheckAllocResp) payloadSize() int {
	n := 10 + m.Region.encodedSize()
	if m.HostCaps != 0 {
		n += 4
	}
	return n
}
func (m *CheckAllocResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	b[1] = 0
	if m.Fresh {
		b[1] = 1
	}
	binary.BigEndian.PutUint64(b[2:], m.Incarnation)
	n, err := putRegion(b[10:], m.Region)
	if err != nil {
		return err
	}
	if m.HostCaps != 0 {
		binary.BigEndian.PutUint32(b[10+n:], uint32(m.HostCaps))
	}
	return nil
}
func (m *CheckAllocResp) decode(b []byte) error {
	if len(b) < 10 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Fresh = b[1] != 0
	m.Incarnation = binary.BigEndian.Uint64(b[2:])
	r, n, err := getRegion(b[10:])
	if err != nil {
		return err
	}
	m.Region = r
	m.HostCaps = 0
	if len(b) >= 10+n+4 {
		m.HostCaps = Caps(binary.BigEndian.Uint32(b[10+n:]))
	}
	return nil
}

// KeepAlive is the cmd's periodic liveness echo to a client (§3.1). The
// client must answer with KeepAliveAck or its regions are reclaimed.
// Incarnation carries the manager's incarnation, so a surviving client
// learns about a manager restart on the very next keep-alive and can
// start revalidating its regions against the rebuilt directory.
type KeepAlive struct {
	ClientID    uint32
	Incarnation uint64
}

func (*KeepAlive) Kind() Type       { return TKeepAlive }
func (*KeepAlive) payloadSize() int { return 12 }
func (m *KeepAlive) encode(b []byte) error {
	binary.BigEndian.PutUint32(b, m.ClientID)
	binary.BigEndian.PutUint64(b[4:], m.Incarnation)
	return nil
}
func (m *KeepAlive) decode(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	m.ClientID = binary.BigEndian.Uint32(b)
	m.Incarnation = binary.BigEndian.Uint64(b[4:])
	return nil
}

// KeepAliveAck is the client's echo response. It piggybacks the
// client's recovery counters (§4.3 style hint-carrying) so the manager
// can aggregate drop/revalidate/re-open totals without extra RPCs.
type KeepAliveAck struct {
	ClientID uint32
	// Drops counts drop-host events (all descriptors on a failed host
	// invalidated at once, §3.1).
	Drops uint64
	// Revalidations counts checkAlloc probes issued by the client's
	// background recovery pass.
	Revalidations uint64
	// Reopens counts regions transparently re-opened and repopulated
	// after a drop.
	Reopens uint64
	// HandoffAdopts counts regions re-adopted from a graceful-reclaim
	// handoff target without disk repopulation.
	HandoffAdopts uint64
	// HedgedReads / HedgeWins / HedgeWasted count hedged read
	// decisions: backup disk reads issued when the remote exceeded its
	// latency threshold, how many the disk won, and how many remote
	// replies arrived after the hedge already answered.
	HedgedReads uint64
	HedgeWins   uint64
	HedgeWasted uint64
	// RetryExhausted counts operations whose unified retry budget ran
	// dry at this client's endpoint.
	RetryExhausted uint64
	// ChecksumFailures counts bulk frames whose CRC32C did not match
	// the announced checksum; CorruptHosts breaks the total down by the
	// host that served the corrupt frame.
	ChecksumFailures uint64
	CorruptHosts     []HostCount
	// Caps is the client's own capability set, piggybacked so the
	// manager learns which fast paths each client speaks without an
	// extra RPC. Optional trailing field: zero is omitted, and acks from
	// older clients decode as zero (legacy client).
	Caps Caps
}

func (*KeepAliveAck) Kind() Type { return TKeepAliveAck }
func (m *KeepAliveAck) payloadSize() int {
	n := 4 + 9*8 + 2
	for _, h := range m.CorruptHosts {
		n += h.encodedSize()
	}
	if m.Caps != 0 {
		n += 4
	}
	return n
}
func (m *KeepAliveAck) encode(b []byte) error {
	if len(m.CorruptHosts) > math16max {
		return ErrFieldBounds
	}
	binary.BigEndian.PutUint32(b, m.ClientID)
	binary.BigEndian.PutUint64(b[4:], m.Drops)
	binary.BigEndian.PutUint64(b[12:], m.Revalidations)
	binary.BigEndian.PutUint64(b[20:], m.Reopens)
	binary.BigEndian.PutUint64(b[28:], m.HandoffAdopts)
	binary.BigEndian.PutUint64(b[36:], m.HedgedReads)
	binary.BigEndian.PutUint64(b[44:], m.HedgeWins)
	binary.BigEndian.PutUint64(b[52:], m.HedgeWasted)
	binary.BigEndian.PutUint64(b[60:], m.RetryExhausted)
	binary.BigEndian.PutUint64(b[68:], m.ChecksumFailures)
	binary.BigEndian.PutUint16(b[76:], uint16(len(m.CorruptHosts)))
	at := 78
	for _, h := range m.CorruptHosts {
		n, err := putString(b[at:], h.Addr)
		if err != nil {
			return err
		}
		at += n
		binary.BigEndian.PutUint64(b[at:], h.Count)
		at += 8
	}
	if m.Caps != 0 {
		binary.BigEndian.PutUint32(b[at:], uint32(m.Caps))
	}
	return nil
}
func (m *KeepAliveAck) decode(b []byte) error {
	if len(b) < 78 {
		return ErrTruncated
	}
	m.ClientID = binary.BigEndian.Uint32(b)
	m.Drops = binary.BigEndian.Uint64(b[4:])
	m.Revalidations = binary.BigEndian.Uint64(b[12:])
	m.Reopens = binary.BigEndian.Uint64(b[20:])
	m.HandoffAdopts = binary.BigEndian.Uint64(b[28:])
	m.HedgedReads = binary.BigEndian.Uint64(b[36:])
	m.HedgeWins = binary.BigEndian.Uint64(b[44:])
	m.HedgeWasted = binary.BigEndian.Uint64(b[52:])
	m.RetryExhausted = binary.BigEndian.Uint64(b[60:])
	m.ChecksumFailures = binary.BigEndian.Uint64(b[68:])
	count := int(binary.BigEndian.Uint16(b[76:]))
	at := 78
	m.CorruptHosts = nil
	if count > 0 {
		m.CorruptHosts = make([]HostCount, 0, count)
	}
	for i := 0; i < count; i++ {
		addr, n, err := getString(b[at:])
		if err != nil {
			return err
		}
		at += n
		if len(b) < at+8 {
			return ErrTruncated
		}
		m.CorruptHosts = append(m.CorruptHosts, HostCount{Addr: addr, Count: binary.BigEndian.Uint64(b[at:])})
		at += 8
	}
	m.Caps = 0
	if len(b) >= at+4 {
		m.Caps = Caps(binary.BigEndian.Uint32(b[at:]))
	}
	return nil
}

// HostState is the recruit/reclaim state an rmd reports for its host.
type HostState uint8

// Host states carried in HostStatus.
const (
	// HostIdle: the host satisfied the idleness predicate; its imd is up
	// and serving with the given pool size.
	HostIdle HostState = iota
	// HostBusy: the owner reclaimed the host; the imd is gone and all
	// regions it hosted are invalid.
	HostBusy
)

func (s HostState) String() string {
	switch s {
	case HostIdle:
		return "idle"
	case HostBusy:
		return "busy"
	}
	return fmt.Sprintf("wire.HostState(%d)", uint8(s))
}

// HostStatus is sent by an rmd/imd to the cmd on state changes and
// piggybacked on every imd<->cmd exchange (§4.3): the host's epoch, its
// total available pool and the largest free block, which the IWD stores
// as hints.
type HostStatus struct {
	HostAddr    string
	State       HostState
	Epoch       uint64
	AvailBytes  uint64
	LargestFree uint64
	// Incarnation is the manager incarnation the sender last heard
	// from. Zero means first contact (no incarnation known yet) and is
	// always accepted; a non-zero mismatch is fenced with StatusStale
	// so a delayed pre-crash HostBusy cannot tear down a row the
	// restarted manager just rebuilt.
	Incarnation uint64
	// Caps advertises the sender's optional protocol features (inline
	// reads, eager bulk, batched fetch). Optional trailing field: zero
	// is omitted, and announces from older imds decode as zero, which
	// the manager reads as "legacy host, no fast paths".
	Caps Caps
}

func (*HostStatus) Kind() Type { return THostStatus }
func (m *HostStatus) payloadSize() int {
	n := 2 + len(m.HostAddr) + 1 + 32
	if m.Caps != 0 {
		n += 4
	}
	return n
}
func (m *HostStatus) encode(b []byte) error {
	n, err := putString(b, m.HostAddr)
	if err != nil {
		return err
	}
	b[n] = uint8(m.State)
	binary.BigEndian.PutUint64(b[n+1:], m.Epoch)
	binary.BigEndian.PutUint64(b[n+9:], m.AvailBytes)
	binary.BigEndian.PutUint64(b[n+17:], m.LargestFree)
	binary.BigEndian.PutUint64(b[n+25:], m.Incarnation)
	if m.Caps != 0 {
		binary.BigEndian.PutUint32(b[n+33:], uint32(m.Caps))
	}
	return nil
}
func (m *HostStatus) decode(b []byte) error {
	addr, n, err := getString(b)
	if err != nil {
		return err
	}
	if len(b) < n+33 {
		return ErrTruncated
	}
	m.HostAddr = addr
	m.State = HostState(b[n])
	m.Epoch = binary.BigEndian.Uint64(b[n+1:])
	m.AvailBytes = binary.BigEndian.Uint64(b[n+9:])
	m.LargestFree = binary.BigEndian.Uint64(b[n+17:])
	m.Incarnation = binary.BigEndian.Uint64(b[n+25:])
	m.Caps = 0
	if len(b) >= n+37 {
		m.Caps = Caps(binary.BigEndian.Uint32(b[n+33:]))
	}
	return nil
}

// HostStatusAck acknowledges a HostStatus. Incarnation carries the
// manager's current incarnation: it is how an imd discovers a manager
// restart (and kicks its inventory re-report), and on StatusStale it
// names the incarnation the sender must re-announce against.
type HostStatusAck struct {
	Status      Status
	Incarnation uint64
}

func (*HostStatusAck) Kind() Type       { return THostStatusAck }
func (*HostStatusAck) payloadSize() int { return 9 }
func (m *HostStatusAck) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Incarnation)
	return nil
}
func (m *HostStatusAck) decode(b []byte) error {
	if len(b) < 9 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Incarnation = binary.BigEndian.Uint64(b[1:])
	return nil
}

// IMDAllocReq is the cmd asking an imd to carve a region from its pool.
// Key and Client record the region's directory key and owning client at
// the imd, so a restarted manager can rebuild its full directory row
// from the imd's inventory re-report alone.
type IMDAllocReq struct {
	RegionID uint64
	Length   uint64
	Key      RegionKey
	Client   string
}

func (*IMDAllocReq) Kind() Type         { return TIMDAllocReq }
func (m *IMDAllocReq) payloadSize() int { return 16 + regionKeySize + 2 + len(m.Client) }
func (m *IMDAllocReq) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:8], m.RegionID)
	binary.BigEndian.PutUint64(b[8:16], m.Length)
	putRegionKey(b[16:], m.Key)
	_, err := putString(b[16+regionKeySize:], m.Client)
	return err
}
func (m *IMDAllocReq) decode(b []byte) error {
	if len(b) < 16 {
		return ErrTruncated
	}
	m.RegionID = binary.BigEndian.Uint64(b[0:8])
	m.Length = binary.BigEndian.Uint64(b[8:16])
	k, n, err := getRegionKey(b[16:])
	if err != nil {
		return err
	}
	m.Key = k
	client, _, err := getString(b[16+n:])
	if err != nil {
		return err
	}
	m.Client = client
	return nil
}

// IMDAllocResp reports the pool offset of a new region, with the imd's
// current availability piggybacked (§4.3).
type IMDAllocResp struct {
	Status      Status
	PoolOffset  uint64
	Epoch       uint64
	AvailBytes  uint64
	LargestFree uint64
}

func (*IMDAllocResp) Kind() Type       { return TIMDAllocResp }
func (*IMDAllocResp) payloadSize() int { return 1 + 32 }
func (m *IMDAllocResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.PoolOffset)
	binary.BigEndian.PutUint64(b[9:], m.Epoch)
	binary.BigEndian.PutUint64(b[17:], m.AvailBytes)
	binary.BigEndian.PutUint64(b[25:], m.LargestFree)
	return nil
}
func (m *IMDAllocResp) decode(b []byte) error {
	if len(b) < 33 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.PoolOffset = binary.BigEndian.Uint64(b[1:])
	m.Epoch = binary.BigEndian.Uint64(b[9:])
	m.AvailBytes = binary.BigEndian.Uint64(b[17:])
	m.LargestFree = binary.BigEndian.Uint64(b[25:])
	return nil
}

// IMDFreeReq is the cmd asking an imd to release a region.
type IMDFreeReq struct {
	RegionID uint64
}

func (*IMDFreeReq) Kind() Type       { return TIMDFreeReq }
func (*IMDFreeReq) payloadSize() int { return 8 }
func (m *IMDFreeReq) encode(b []byte) error {
	binary.BigEndian.PutUint64(b, m.RegionID)
	return nil
}
func (m *IMDFreeReq) decode(b []byte) error {
	if len(b) < 8 {
		return ErrTruncated
	}
	m.RegionID = binary.BigEndian.Uint64(b)
	return nil
}

// IMDFreeResp acknowledges a region free, with availability piggybacked.
type IMDFreeResp struct {
	Status      Status
	Epoch       uint64
	AvailBytes  uint64
	LargestFree uint64
}

func (*IMDFreeResp) Kind() Type       { return TIMDFreeResp }
func (*IMDFreeResp) payloadSize() int { return 1 + 24 }
func (m *IMDFreeResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Epoch)
	binary.BigEndian.PutUint64(b[9:], m.AvailBytes)
	binary.BigEndian.PutUint64(b[17:], m.LargestFree)
	return nil
}
func (m *IMDFreeResp) decode(b []byte) error {
	if len(b) < 25 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Epoch = binary.BigEndian.Uint64(b[1:])
	m.AvailBytes = binary.BigEndian.Uint64(b[9:])
	m.LargestFree = binary.BigEndian.Uint64(b[17:])
	return nil
}

// ReadReq asks an imd for Length bytes at Offset within a region (client
// -> imd data path). By default the response data travels via the bulk
// protocol; the optional trailing fields request a fast path instead.
// Caps names the features the requester speaks — an old imd ignores the
// extra bytes and serves the legacy ladder, so the request is safe to
// send to any peer. When Caps includes CapEagerRead, XferID is the
// requester-chosen bulk transfer id (the requester pre-registers its
// receive state under this id before sending, so eager data can never
// race ahead of it), and ChunkSize/Window are the packet size and
// receive window it committed.
type ReadReq struct {
	RegionID uint64
	Epoch    uint64
	Offset   uint64
	Length   uint64

	Caps      Caps
	XferID    uint64
	ChunkSize uint32
	Window    uint32
}

func (*ReadReq) Kind() Type { return TReadReq }
func (m *ReadReq) extended() bool {
	return m.Caps != 0 || m.XferID != 0 || m.ChunkSize != 0 || m.Window != 0
}
func (m *ReadReq) payloadSize() int {
	if m.extended() {
		return 52
	}
	return 32
}
func (m *ReadReq) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.RegionID)
	binary.BigEndian.PutUint64(b[8:], m.Epoch)
	binary.BigEndian.PutUint64(b[16:], m.Offset)
	binary.BigEndian.PutUint64(b[24:], m.Length)
	if m.extended() {
		binary.BigEndian.PutUint32(b[32:], uint32(m.Caps))
		binary.BigEndian.PutUint64(b[36:], m.XferID)
		binary.BigEndian.PutUint32(b[44:], m.ChunkSize)
		binary.BigEndian.PutUint32(b[48:], m.Window)
	}
	return nil
}
func (m *ReadReq) decode(b []byte) error {
	if len(b) < 32 {
		return ErrTruncated
	}
	m.RegionID = binary.BigEndian.Uint64(b[0:])
	m.Epoch = binary.BigEndian.Uint64(b[8:])
	m.Offset = binary.BigEndian.Uint64(b[16:])
	m.Length = binary.BigEndian.Uint64(b[24:])
	m.Caps, m.XferID, m.ChunkSize, m.Window = 0, 0, 0, 0
	if len(b) >= 52 {
		m.Caps = Caps(binary.BigEndian.Uint32(b[32:]))
		m.XferID = binary.BigEndian.Uint64(b[36:])
		m.ChunkSize = binary.BigEndian.Uint32(b[44:])
		m.Window = binary.BigEndian.Uint32(b[48:])
	}
	return nil
}

// WriteReq announces an incoming write of Length bytes at Offset within a
// region; the data itself follows via the bulk protocol under TransferID.
// WriteSeq orders writes to one region: the imd ignores an announcement
// whose sequence is not newer than the last write it applied, so a
// duplicated or delayed announcement replayed by the network can never
// roll the region back to older bytes. Zero means unordered (legacy).
// Crc is the CRC32C of the announced bytes; the imd refuses the write
// when the received bulk data does not match. Zero means unchecked.
type WriteReq struct {
	RegionID   uint64
	Epoch      uint64
	Offset     uint64
	Length     uint64
	TransferID uint64
	WriteSeq   uint64
	Crc        uint32
}

func (*WriteReq) Kind() Type       { return TWriteReq }
func (*WriteReq) payloadSize() int { return 52 }
func (m *WriteReq) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.RegionID)
	binary.BigEndian.PutUint64(b[8:], m.Epoch)
	binary.BigEndian.PutUint64(b[16:], m.Offset)
	binary.BigEndian.PutUint64(b[24:], m.Length)
	binary.BigEndian.PutUint64(b[32:], m.TransferID)
	binary.BigEndian.PutUint64(b[40:], m.WriteSeq)
	binary.BigEndian.PutUint32(b[48:], m.Crc)
	return nil
}
func (m *WriteReq) decode(b []byte) error {
	if len(b) < 52 {
		return ErrTruncated
	}
	m.RegionID = binary.BigEndian.Uint64(b[0:])
	m.Epoch = binary.BigEndian.Uint64(b[8:])
	m.Offset = binary.BigEndian.Uint64(b[16:])
	m.Length = binary.BigEndian.Uint64(b[24:])
	m.TransferID = binary.BigEndian.Uint64(b[32:])
	m.WriteSeq = binary.BigEndian.Uint64(b[40:])
	m.Crc = binary.BigEndian.Uint32(b[48:])
	return nil
}

// DataResp reports the outcome of a read or write: the byte count
// actually served (which may be short, per §3.2) and, for reads, the
// TransferID under which the bulk data is being sent. For reads, Crc
// is the CRC32C of the served bytes, computed over the pool snapshot
// before the bulk send; the receiving client verifies it after the
// bulk transfer completes. Zero means unchecked.
//
// The optional trailing fields carry the read fast paths. With
// DataFlagInline set, Payload holds the served bytes themselves — the
// whole read answered in this one frame, no bulk transfer at all. With
// DataFlagEager set, this response doubles as the bulk offer: the
// sender is already blasting the first window under the requester's
// chosen TransferID, no BulkOffer/BulkAccept exchange happens. Old
// peers never set the flags, and a zero Flags with no payload encodes
// to the legacy 21-byte form.
type DataResp struct {
	Status     Status
	Count      uint64
	TransferID uint64
	Crc        uint32
	Flags      uint8
	Payload    []byte
}

// DataResp.Flags bits.
const (
	// DataFlagInline: Payload carries the served bytes inline.
	DataFlagInline uint8 = 1 << iota
	// DataFlagEager: this response doubles as the bulk offer; the first
	// window is already in flight under the requester-chosen TransferID.
	DataFlagEager
)

func (*DataResp) Kind() Type { return TDataResp }
func (m *DataResp) payloadSize() int {
	if m.Flags != 0 || len(m.Payload) > 0 {
		return 22 + len(m.Payload)
	}
	return 21
}
func (m *DataResp) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Count)
	binary.BigEndian.PutUint64(b[9:], m.TransferID)
	binary.BigEndian.PutUint32(b[17:], m.Crc)
	if m.Flags != 0 || len(m.Payload) > 0 {
		b[21] = m.Flags
		copy(b[22:], m.Payload)
	}
	return nil
}
func (m *DataResp) decode(b []byte) error {
	if len(b) < 21 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Count = binary.BigEndian.Uint64(b[1:])
	m.TransferID = binary.BigEndian.Uint64(b[9:])
	m.Crc = binary.BigEndian.Uint32(b[17:])
	m.Flags = 0
	m.Payload = nil
	if len(b) >= 22 {
		m.Flags = b[21]
		if len(b) > 22 {
			m.Payload = append([]byte(nil), b[22:]...)
		}
	}
	return nil
}

// BulkOffer opens a bulk transfer (§4.4): the sender names the transfer,
// its total length and the packet payload size it will use, and asks the
// receiver how much buffer space it can commit.
type BulkOffer struct {
	TransferID uint64
	TotalLen   uint64
	ChunkSize  uint32
}

func (*BulkOffer) Kind() Type       { return TBulkOffer }
func (*BulkOffer) payloadSize() int { return 20 }
func (m *BulkOffer) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.TransferID)
	binary.BigEndian.PutUint64(b[8:], m.TotalLen)
	binary.BigEndian.PutUint32(b[16:], m.ChunkSize)
	return nil
}
func (m *BulkOffer) decode(b []byte) error {
	if len(b) < 20 {
		return ErrTruncated
	}
	m.TransferID = binary.BigEndian.Uint64(b[0:])
	m.TotalLen = binary.BigEndian.Uint64(b[8:])
	m.ChunkSize = binary.BigEndian.Uint32(b[16:])
	return nil
}

// BulkAccept is the receiver's answer: the number of packets it can
// buffer per blast window (the negotiated space of §4.4).
type BulkAccept struct {
	TransferID uint64
	Window     uint32
	Status     Status
}

func (*BulkAccept) Kind() Type       { return TBulkAccept }
func (*BulkAccept) payloadSize() int { return 13 }
func (m *BulkAccept) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.TransferID)
	binary.BigEndian.PutUint32(b[8:], m.Window)
	b[12] = uint8(m.Status)
	return nil
}
func (m *BulkAccept) decode(b []byte) error {
	if len(b) < 13 {
		return ErrTruncated
	}
	m.TransferID = binary.BigEndian.Uint64(b[0:])
	m.Window = binary.BigEndian.Uint32(b[8:])
	m.Status = Status(b[12])
	return nil
}

// BulkData carries one sequenced chunk of a transfer.
type BulkData struct {
	TransferID uint64
	Seq        uint32
	Payload    []byte
}

func (*BulkData) Kind() Type         { return TBulkData }
func (m *BulkData) payloadSize() int { return 12 + len(m.Payload) }
func (m *BulkData) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.TransferID)
	binary.BigEndian.PutUint32(b[8:], m.Seq)
	copy(b[12:], m.Payload)
	return nil
}
func (m *BulkData) decode(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	m.TransferID = binary.BigEndian.Uint64(b[0:])
	m.Seq = binary.BigEndian.Uint32(b[8:])
	m.Payload = append([]byte(nil), b[12:]...)
	return nil
}

// BulkNack is the receiver's selective NACK (§4.4): the sequence numbers
// still missing after a window timeout. An empty Missing list tells the
// sender the window arrived completely.
type BulkNack struct {
	TransferID uint64
	Missing    []uint32
}

func (*BulkNack) Kind() Type         { return TBulkNack }
func (m *BulkNack) payloadSize() int { return 12 + 4*len(m.Missing) }
func (m *BulkNack) encode(b []byte) error {
	if len(m.Missing) > math32max {
		return ErrFieldBounds
	}
	binary.BigEndian.PutUint64(b[0:], m.TransferID)
	binary.BigEndian.PutUint32(b[8:], uint32(len(m.Missing)))
	for i, s := range m.Missing {
		binary.BigEndian.PutUint32(b[12+4*i:], s)
	}
	return nil
}
func (m *BulkNack) decode(b []byte) error {
	if len(b) < 12 {
		return ErrTruncated
	}
	m.TransferID = binary.BigEndian.Uint64(b[0:])
	n := int(binary.BigEndian.Uint32(b[8:]))
	if len(b) < 12+4*n {
		return ErrTruncated
	}
	m.Missing = make([]uint32, n)
	for i := range m.Missing {
		m.Missing[i] = binary.BigEndian.Uint32(b[12+4*i:])
	}
	return nil
}

const math32max = 1 << 16 // sanity bound on NACK list length (uint32-encoded)

// math16max bounds element counts that travel as uint16 on the wire.
// The bound must be strictly below 1<<16: exactly 65536 elements would
// pass a `> 1<<16` check yet encode as count 0, silently dropping the
// whole list on decode.
const math16max = 1<<16 - 1

// BulkDone closes a transfer from the receiver side: all bytes arrived.
type BulkDone struct {
	TransferID uint64
	Status     Status
}

func (*BulkDone) Kind() Type       { return TBulkDone }
func (*BulkDone) payloadSize() int { return 9 }
func (m *BulkDone) encode(b []byte) error {
	binary.BigEndian.PutUint64(b[0:], m.TransferID)
	b[8] = uint8(m.Status)
	return nil
}
func (m *BulkDone) decode(b []byte) error {
	if len(b) < 9 {
		return ErrTruncated
	}
	m.TransferID = binary.BigEndian.Uint64(b[0:])
	m.Status = Status(b[8])
	return nil
}
