package wire

import "encoding/binary"

// Manager crash-recovery sub-protocol. The central manager keeps its
// region directory purely in memory; after a crash it restarts under a
// new incarnation number and rebuilds the directory as soft state from
// the periphery. Every imd that notices the new incarnation (via the
// HostStatusAck on its next announce) pushes a full InventoryReport:
// its identity, epoch, pool availability and every region it holds,
// including the region key and owning client recorded at allocation
// time. The manager answers with an InventoryAck stamped with its
// current incarnation; a report carrying a dead incarnation is refused
// with StatusStale so a delayed pre-crash frame can never resurrect a
// stale directory row.

// InventoryRegion describes one region a reporting imd holds: the
// imd-local identifier and pool placement, the last applied write
// sequence, and the allocation-time key and owning client the manager
// needs to rebuild the full directory row.
type InventoryRegion struct {
	RegionID   uint64
	PoolOffset uint64
	Length     uint64
	WriteSeq   uint64
	Key        RegionKey
	// Client is the transport address of the owning client, as recorded
	// from the IMDAllocReq that created the region. Empty when the
	// region predates client tracking.
	Client string
}

func (r InventoryRegion) encodedSize() int { return 32 + regionKeySize + 2 + len(r.Client) }

// InventoryReport is an imd's full inventory re-report to a restarted
// manager (imd -> cmd). Incarnation is the manager incarnation the imd
// is reporting to, learned from a HostStatusAck; the manager fences
// reports whose incarnation does not match its own.
type InventoryReport struct {
	HostAddr    string
	Epoch       uint64
	Incarnation uint64
	AvailBytes  uint64
	LargestFree uint64
	Regions     []InventoryRegion
}

func (*InventoryReport) Kind() Type { return TInventoryReport }
func (m *InventoryReport) payloadSize() int {
	n := 2 + len(m.HostAddr) + 32 + 2
	for _, r := range m.Regions {
		n += r.encodedSize()
	}
	return n
}
func (m *InventoryReport) encode(b []byte) error {
	if len(m.Regions) > math16max {
		return ErrFieldBounds
	}
	n, err := putString(b, m.HostAddr)
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint64(b[n:], m.Epoch)
	binary.BigEndian.PutUint64(b[n+8:], m.Incarnation)
	binary.BigEndian.PutUint64(b[n+16:], m.AvailBytes)
	binary.BigEndian.PutUint64(b[n+24:], m.LargestFree)
	binary.BigEndian.PutUint16(b[n+32:], uint16(len(m.Regions)))
	at := n + 34
	for _, r := range m.Regions {
		binary.BigEndian.PutUint64(b[at:], r.RegionID)
		binary.BigEndian.PutUint64(b[at+8:], r.PoolOffset)
		binary.BigEndian.PutUint64(b[at+16:], r.Length)
		binary.BigEndian.PutUint64(b[at+24:], r.WriteSeq)
		at += 32
		at += putRegionKey(b[at:], r.Key)
		cn, err := putString(b[at:], r.Client)
		if err != nil {
			return err
		}
		at += cn
	}
	return nil
}
func (m *InventoryReport) decode(b []byte) error {
	addr, n, err := getString(b)
	if err != nil {
		return err
	}
	if len(b) < n+34 {
		return ErrTruncated
	}
	m.HostAddr = addr
	m.Epoch = binary.BigEndian.Uint64(b[n:])
	m.Incarnation = binary.BigEndian.Uint64(b[n+8:])
	m.AvailBytes = binary.BigEndian.Uint64(b[n+16:])
	m.LargestFree = binary.BigEndian.Uint64(b[n+24:])
	count := int(binary.BigEndian.Uint16(b[n+32:]))
	at := n + 34
	m.Regions = nil
	if count > 0 {
		m.Regions = make([]InventoryRegion, 0, count)
	}
	for i := 0; i < count; i++ {
		if len(b) < at+32 {
			return ErrTruncated
		}
		r := InventoryRegion{
			RegionID:   binary.BigEndian.Uint64(b[at:]),
			PoolOffset: binary.BigEndian.Uint64(b[at+8:]),
			Length:     binary.BigEndian.Uint64(b[at+16:]),
			WriteSeq:   binary.BigEndian.Uint64(b[at+24:]),
		}
		at += 32
		key, kn, err := getRegionKey(b[at:])
		if err != nil {
			return err
		}
		at += kn
		client, cn, err := getString(b[at:])
		if err != nil {
			return err
		}
		at += cn
		r.Key = key
		r.Client = client
		m.Regions = append(m.Regions, r)
	}
	return nil
}

// InventoryAck acknowledges an InventoryReport (cmd -> imd). StatusOK
// means the inventory was folded into the rebuilt directory;
// StatusStale means the report carried a dead incarnation and the imd
// should re-report against Incarnation.
type InventoryAck struct {
	Status      Status
	Incarnation uint64
}

func (*InventoryAck) Kind() Type       { return TInventoryAck }
func (*InventoryAck) payloadSize() int { return 9 }
func (m *InventoryAck) encode(b []byte) error {
	b[0] = uint8(m.Status)
	binary.BigEndian.PutUint64(b[1:], m.Incarnation)
	return nil
}
func (m *InventoryAck) decode(b []byte) error {
	if len(b) < 9 {
		return ErrTruncated
	}
	m.Status = Status(b[0])
	m.Incarnation = binary.BigEndian.Uint64(b[1:])
	return nil
}
