package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestClusterStatsRoundTrip(t *testing.T) {
	in := &ClusterStatsResp{
		Status: StatusOK,
		Hosts: []HostInfo{
			{Addr: "10.0.0.1:7001", Epoch: 3, AvailBytes: 90 << 20, LargestFree: 64 << 20},
			{Addr: "10.0.0.2:7001", Epoch: 9, AvailBytes: 10 << 20, LargestFree: 1 << 20},
		},
		Regions: 42, Clients: 3,
		Allocs: 100, AllocFailures: 5, Frees: 60, StaleDrops: 2, OrphanReclaims: 7,
		ClientDrops: 11, ClientRevalidations: 23, ClientReopens: 4,
	}
	got := roundTrip(t, 9, in)
	if !reflect.DeepEqual(got, in) {
		t.Fatalf("round trip mismatch:\n got  %+v\n want %+v", got, in)
	}
	// Empty request round-trips too.
	req := roundTrip(t, 10, &ClusterStatsReq{})
	if _, ok := req.(*ClusterStatsReq); !ok {
		t.Fatalf("request round trip = %T", req)
	}
}

func TestClusterStatsEmptyHosts(t *testing.T) {
	in := &ClusterStatsResp{Status: StatusOK}
	got := roundTrip(t, 0, in).(*ClusterStatsResp)
	if len(got.Hosts) != 0 {
		t.Fatalf("hosts = %d, want 0", len(got.Hosts))
	}
}

func TestPropertyClusterStatsRoundTrip(t *testing.T) {
	f := func(addrs []string, epoch, avail uint64, regions, clients uint32) bool {
		in := &ClusterStatsResp{Status: StatusOK, Regions: uint64(regions), Clients: uint64(clients)}
		for _, a := range addrs {
			if len(a) > 200 {
				a = a[:200]
			}
			if len(in.Hosts) >= 100 {
				break
			}
			in.Hosts = append(in.Hosts, HostInfo{Addr: a, Epoch: epoch, AvailBytes: avail})
		}
		frame, err := Encode(0, in)
		if err != nil {
			return false
		}
		_, out, err := Decode(frame)
		if err != nil {
			return false
		}
		got := out.(*ClusterStatsResp)
		if len(got.Hosts) != len(in.Hosts) {
			return false
		}
		for i := range got.Hosts {
			if got.Hosts[i] != in.Hosts[i] {
				return false
			}
		}
		return got.Regions == in.Regions && got.Clients == in.Clients
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
