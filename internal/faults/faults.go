// Package faults implements the deterministic fault-injection layer for
// cluster harnesses: a seeded scheduler that derives a complete fault
// timeline from a single seed and replays it against any deployment
// through the small Target interface.
//
// Four fault classes are modelled, matching the failure modes of §3.1
// and §4.3 of the paper:
//
//   - imd crash/restart: the daemon dies without draining (a kill -9 or
//     OS crash); the restarted incarnation carries a bumped epoch, so
//     regions cached by the previous one are detected as orphans.
//   - manager blackout: the central manager's machine drops off the
//     network for a window and returns.
//   - host reclaim churn: the workstation owner comes back and the imd
//     drains politely; the host is re-recruited later.
//   - link degradation: a host's NIC/switch port drops, duplicates and
//     reorders frames for a window, exercising the bulk protocol's
//     retransmission machinery under the drop semantics of §3.1.
//
// Determinism contract: a Plan's Schedule is a pure function of the
// plan (seed included) — same seed, same plan parameters ⇒ the same
// event list, byte for byte. Execution timing then rides on the
// injected sim.Clock, so a virtual-clock harness replays bit-for-bit
// while a wall-clock harness replays the same schedule with real
// sleeps.
package faults

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
	"dodo/internal/simnet"
)

// Kind is a fault-event class.
type Kind int

// Event kinds. Every "down" kind has a matching "up" kind, and Schedule
// guarantees the up-event lands inside the plan window, so a completed
// schedule always leaves the cluster fully healed.
const (
	// KindCrashIMD kills a host's imd without the polite drain.
	KindCrashIMD Kind = iota
	// KindRestartIMD re-forks the imd with a bumped epoch.
	KindRestartIMD
	// KindBlackoutManager partitions the central manager.
	KindBlackoutManager
	// KindRestoreManager heals the manager partition.
	KindRestoreManager
	// KindReclaimHost drains the imd politely (owner returned).
	KindReclaimHost
	// KindRecruitHost re-recruits the host (owner left again).
	KindRecruitHost
	// KindDegradeLinks makes a host's links lossy/duplicating/reordering.
	KindDegradeLinks
	// KindRestoreLinks heals the host's links.
	KindRestoreLinks
	// KindCrashManager kills the central manager process outright: its
	// in-memory directory is lost (contrast KindBlackoutManager, where
	// the process survives behind a partition).
	KindCrashManager
	// KindRestartManager starts a fresh manager at the same address
	// under a new incarnation; the directory rebuilds from imd
	// inventory re-reports.
	KindRestartManager
)

func (k Kind) String() string {
	switch k {
	case KindCrashIMD:
		return "crash-imd"
	case KindRestartIMD:
		return "restart-imd"
	case KindBlackoutManager:
		return "blackout-manager"
	case KindRestoreManager:
		return "restore-manager"
	case KindReclaimHost:
		return "reclaim-host"
	case KindRecruitHost:
		return "recruit-host"
	case KindDegradeLinks:
		return "degrade-links"
	case KindRestoreLinks:
		return "restore-links"
	case KindCrashManager:
		return "crash-manager"
	case KindRestartManager:
		return "restart-manager"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	// At is the offset from the start of the sweep.
	At time.Duration
	// Kind is the fault class.
	Kind Kind
	// Host names the affected workstation; empty for manager events.
	Host string
	// Link carries the injection rates for KindDegradeLinks.
	Link simnet.Faults
}

func (e Event) String() string {
	s := fmt.Sprintf("t+%v %v", e.At, e.Kind)
	if e.Host != "" {
		s += " " + e.Host
	}
	return s
}

// Target is the deployment surface the scheduler acts on. The cluster
// harness adapts a live deployment (daemons over any
// transport.Transport) to it; tests may record calls instead. All
// methods must be idempotent: overlapping fault windows can make a
// restart land on a host that a reclaim/recruit cycle already revived,
// and the scheduler does not deduplicate.
type Target interface {
	// CrashIMD kills host's imd without draining.
	CrashIMD(host string)
	// RestartIMD re-forks host's imd with a fresh epoch.
	RestartIMD(host string)
	// BlackoutManager cuts the central manager off the network.
	BlackoutManager()
	// RestoreManager reconnects the central manager.
	RestoreManager()
	// ReclaimHost drains host's imd as an owner return would.
	ReclaimHost(host string)
	// RecruitHost re-recruits host.
	RecruitHost(host string)
	// DegradeLinks makes every frame to or from host subject to f.
	DegradeLinks(host string, f simnet.Faults)
	// RestoreLinks heals host's links.
	RestoreLinks(host string)
	// CrashManager kills the central manager, losing its directory.
	CrashManager()
	// RestartManager starts a fresh manager under a new incarnation.
	RestartManager()
}

// Plan parameterizes a fault sweep. A mean of zero disables that fault
// class. Intervals between events of one class are drawn uniformly from
// [mean/2, 3*mean/2) so schedules neither synchronize nor starve.
type Plan struct {
	// Seed derives the whole timeline; same seed ⇒ same schedule.
	Seed int64
	// Duration is the churn window. Every fault's heal event is
	// scheduled inside it, so the cluster ends the sweep healthy.
	Duration time.Duration
	// Hosts are the workstation names subject to per-host faults.
	Hosts []string

	// CrashMean is the mean interval between imd crashes per host.
	CrashMean time.Duration
	// RestartDelay is how long a crashed imd stays down.
	RestartDelay time.Duration

	// BlackoutMean is the mean interval between manager blackouts.
	BlackoutMean time.Duration
	// BlackoutLength is how long each blackout lasts.
	BlackoutLength time.Duration

	// MgrCrashMean is the mean interval between manager crashes (the
	// process dies and its in-memory directory with it).
	MgrCrashMean time.Duration
	// MgrRestartDelay is how long the manager stays dead before a new
	// incarnation starts.
	MgrRestartDelay time.Duration

	// ReclaimMean is the mean interval between owner returns per host.
	ReclaimMean time.Duration
	// ReclaimLength is how long the owner keeps the host.
	ReclaimLength time.Duration

	// DegradeMean is the mean interval between link-degradation windows
	// per host.
	DegradeMean time.Duration
	// DegradeLength is how long each degradation window lasts.
	DegradeLength time.Duration
	// Link carries the loss/duplication/reorder rates applied during a
	// degradation window. Its Seed field is overridden per window,
	// derived from the plan seed, so frame-level decisions replay too.
	Link simnet.Faults
}

// Schedule derives the deterministic event list from the plan. It is a
// pure function: identical plans produce identical schedules.
func (p Plan) Schedule() []Event {
	rng := rand.New(rand.NewSource(p.Seed))
	// interval draws the next same-class gap: uniform [mean/2, 3mean/2).
	interval := func(mean time.Duration) time.Duration {
		return mean/2 + time.Duration(rng.Int63n(int64(mean)))
	}
	type seqEvent struct {
		Event
		seq int
	}
	var evs []seqEvent
	add := func(e Event) { evs = append(evs, seqEvent{Event: e, seq: len(evs)}) }

	// Paired down/up windows for one class on one host (or the manager).
	windows := func(mean, length time.Duration, down, up Kind, host string, link bool) {
		if mean <= 0 || length <= 0 {
			return
		}
		for t := interval(mean); t+length < p.Duration; t += interval(mean) {
			downEv := Event{At: t, Kind: down, Host: host}
			if link {
				downEv.Link = p.Link
				downEv.Link.Seed = rng.Int63()
			}
			add(downEv)
			add(Event{At: t + length, Kind: up, Host: host})
		}
	}

	windows(p.BlackoutMean, p.BlackoutLength, KindBlackoutManager, KindRestoreManager, "", false)
	// A zero MgrCrashMean draws no randomness, so legacy plans keep
	// their exact timelines.
	windows(p.MgrCrashMean, p.MgrRestartDelay, KindCrashManager, KindRestartManager, "", false)
	for _, h := range p.Hosts {
		windows(p.CrashMean, p.RestartDelay, KindCrashIMD, KindRestartIMD, h, false)
		windows(p.ReclaimMean, p.ReclaimLength, KindReclaimHost, KindRecruitHost, h, false)
		windows(p.DegradeMean, p.DegradeLength, KindDegradeLinks, KindRestoreLinks, h, true)
	}

	// Sort by time; generation order breaks ties so the schedule is
	// reproducible even with coincident deadlines.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].seq < evs[j].seq
	})
	out := make([]Event, len(evs))
	for i, e := range evs {
		out[i] = e.Event
	}
	return out
}

// Timeline renders a schedule as one line per event, for determinism
// assertions and debugging.
func Timeline(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Counts tallies applied events per class.
type Counts struct {
	Crashes, Restarts       int
	Blackouts, Restores     int
	Reclaims, Recruits      int
	Degrades, LinkHeals     int
	MgrCrashes, MgrRestarts int
	Applied                 int
}

func (c Counts) String() string {
	return fmt.Sprintf("crashes=%d restarts=%d blackouts=%d restores=%d reclaims=%d recruits=%d degrades=%d heals=%d mgrcrashes=%d mgrrestarts=%d applied=%d",
		c.Crashes, c.Restarts, c.Blackouts, c.Restores, c.Reclaims, c.Recruits, c.Degrades, c.LinkHeals, c.MgrCrashes, c.MgrRestarts, c.Applied)
}

// Scheduler replays a schedule against a target on an injected clock.
type Scheduler struct {
	// dodo:unguarded — immutable after construction
	clock sim.Clock
	// dodo:unguarded — immutable after construction
	target Target
	// dodo:unguarded — immutable after construction
	events []Event

	mu locks.Mutex
	// dodo:guardedby mu
	next int
	// dodo:guardedby mu
	counts Counts
	// dodo:guardedby mu
	started bool
	// dodo:guardedby mu
	start time.Time

	// dodo:unguarded — set at construction; closed once under mu in Stop
	stop chan struct{}
	// dodo:unguarded — WaitGroup is internally synchronized
	wg sync.WaitGroup
}

// NewScheduler builds a scheduler over the plan's schedule. The clock
// drives event timing (sim.WallClock for live harnesses, a virtual
// clock for simulated ones).
func NewScheduler(p Plan, clock sim.Clock, target Target) *Scheduler {
	s := &Scheduler{
		clock:  clock,
		target: target,
		events: p.Schedule(),
		stop:   make(chan struct{}),
	}
	s.mu.SetRank(locks.RankFaults)
	return s
}

// Events returns the full schedule.
func (s *Scheduler) Events() []Event { return s.events }

// Counts returns a snapshot of the applied-event tallies.
func (s *Scheduler) Counts() Counts {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counts
}

// Remaining reports how many events have not been applied yet.
func (s *Scheduler) Remaining() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.events) - s.next
}

// Step applies every event due at or before elapsed (offset from the
// sweep start), in schedule order, and reports how many fired. Harness
// loops that own their timeline (virtual clocks) drive the scheduler
// with Step; wall-clock harnesses use Start/Wait.
func (s *Scheduler) Step(elapsed time.Duration) int {
	n := 0
	for {
		s.mu.Lock()
		if s.next >= len(s.events) || s.events[s.next].At > elapsed {
			s.mu.Unlock()
			return n
		}
		ev := s.events[s.next]
		s.next++
		s.mu.Unlock()
		s.apply(ev)
		n++
	}
}

// Start launches the clock-driven replay loop. It may be called once.
func (s *Scheduler) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.start = s.clock.Now()
	s.mu.Unlock()
	s.wg.Add(1)
	go s.run()
}

// Wait blocks until the schedule is exhausted or Stop is called.
func (s *Scheduler) Wait() { s.wg.Wait() }

// Stop aborts the replay loop; remaining events are not applied.
func (s *Scheduler) Stop() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

func (s *Scheduler) run() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		if s.next >= len(s.events) {
			s.mu.Unlock()
			return
		}
		start := s.start
		due := start.Add(s.events[s.next].At)
		s.mu.Unlock()
		if wait := due.Sub(s.clock.Now()); wait > 0 {
			if !sim.SleepInterruptible(s.clock, wait, s.stop) {
				return
			}
		}
		select {
		case <-s.stop:
			return
		default:
		}
		s.Step(s.clock.Now().Sub(start))
	}
}

// apply dispatches one event to the target. Counts are updated first so
// a panicking target still leaves an accurate tally behind.
func (s *Scheduler) apply(ev Event) {
	s.mu.Lock()
	s.counts.Applied++
	switch ev.Kind {
	case KindCrashIMD:
		s.counts.Crashes++
	case KindRestartIMD:
		s.counts.Restarts++
	case KindBlackoutManager:
		s.counts.Blackouts++
	case KindRestoreManager:
		s.counts.Restores++
	case KindReclaimHost:
		s.counts.Reclaims++
	case KindRecruitHost:
		s.counts.Recruits++
	case KindDegradeLinks:
		s.counts.Degrades++
	case KindRestoreLinks:
		s.counts.LinkHeals++
	case KindCrashManager:
		s.counts.MgrCrashes++
	case KindRestartManager:
		s.counts.MgrRestarts++
	}
	s.mu.Unlock()

	switch ev.Kind {
	case KindCrashIMD:
		s.target.CrashIMD(ev.Host)
	case KindRestartIMD:
		s.target.RestartIMD(ev.Host)
	case KindBlackoutManager:
		s.target.BlackoutManager()
	case KindRestoreManager:
		s.target.RestoreManager()
	case KindReclaimHost:
		s.target.ReclaimHost(ev.Host)
	case KindRecruitHost:
		s.target.RecruitHost(ev.Host)
	case KindDegradeLinks:
		s.target.DegradeLinks(ev.Host, ev.Link)
	case KindRestoreLinks:
		s.target.RestoreLinks(ev.Host)
	case KindCrashManager:
		s.target.CrashManager()
	case KindRestartManager:
		s.target.RestartManager()
	}
}
