package faults

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dodo/internal/sim"
	"dodo/internal/simnet"
)

func testPlan(seed int64) Plan {
	return Plan{
		Seed:            seed,
		Duration:        10 * time.Second,
		Hosts:           []string{"ws0", "ws1", "ws2"},
		CrashMean:       2 * time.Second,
		RestartDelay:    500 * time.Millisecond,
		BlackoutMean:    3 * time.Second,
		BlackoutLength:  400 * time.Millisecond,
		MgrCrashMean:    2500 * time.Millisecond,
		MgrRestartDelay: 300 * time.Millisecond,
		ReclaimMean:     4 * time.Second,
		ReclaimLength:   600 * time.Millisecond,
		DegradeMean:     2500 * time.Millisecond,
		DegradeLength:   800 * time.Millisecond,
		Link: simnet.Faults{
			LossRate:     0.10,
			DupRate:      0.05,
			ReorderRate:  0.05,
			ReorderDelay: 5 * time.Millisecond,
		},
	}
}

// recorder is a Target that logs every call, including the per-window
// link seeds, so two replays can be compared byte for byte.
type recorder struct {
	mu    sync.Mutex
	trace []string
}

func (r *recorder) note(s string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = append(r.trace, s)
}

func (r *recorder) Trace() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.trace...)
}

func (r *recorder) CrashIMD(h string)    { r.note("crash " + h) }
func (r *recorder) RestartIMD(h string)  { r.note("restart " + h) }
func (r *recorder) BlackoutManager()     { r.note("blackout") }
func (r *recorder) RestoreManager()      { r.note("restore") }
func (r *recorder) ReclaimHost(h string) { r.note("reclaim " + h) }
func (r *recorder) RecruitHost(h string) { r.note("recruit " + h) }
func (r *recorder) DegradeLinks(h string, f simnet.Faults) {
	r.note(fmt.Sprintf("degrade %s seed=%d", h, f.Seed))
}
func (r *recorder) RestoreLinks(h string) { r.note("heal " + h) }
func (r *recorder) CrashManager()         { r.note("mgr-crash") }
func (r *recorder) RestartManager()       { r.note("mgr-restart") }

func TestScheduleDeterministic(t *testing.T) {
	a := Timeline(testPlan(42).Schedule())
	b := Timeline(testPlan(42).Schedule())
	if a == "" {
		t.Fatal("empty schedule from a plan with every fault class enabled")
	}
	if a != b {
		t.Fatalf("same seed produced different schedules:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
	if c := Timeline(testPlan(43).Schedule()); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleWindowsHeal: every down event has its matching up event
// inside the plan window, so a completed schedule leaves the cluster
// fully healed, and event times are sorted.
func TestScheduleWindowsHeal(t *testing.T) {
	p := testPlan(7)
	events := p.Schedule()
	open := make(map[string]int)
	pair := map[Kind]Kind{
		KindCrashIMD:        KindRestartIMD,
		KindBlackoutManager: KindRestoreManager,
		KindCrashManager:    KindRestartManager,
		KindReclaimHost:     KindRecruitHost,
		KindDegradeLinks:    KindRestoreLinks,
	}
	up := make(map[Kind]Kind)
	for d, u := range pair {
		up[u] = d
	}
	var last time.Duration
	for _, ev := range events {
		if ev.At < last {
			t.Fatalf("schedule not sorted: %v after %v", ev, last)
		}
		last = ev.At
		if ev.At >= p.Duration {
			t.Fatalf("event %v outside plan window %v", ev, p.Duration)
		}
		if _, isDown := pair[ev.Kind]; isDown {
			open[ev.Kind.String()+ev.Host]++
		} else if down, isUp := up[ev.Kind]; isUp {
			key := down.String() + ev.Host
			open[key]--
			if open[key] < 0 {
				t.Fatalf("heal event %v without a matching down event", ev)
			}
		}
	}
	for key, n := range open {
		if n != 0 {
			t.Fatalf("window %q left open at end of schedule (%d unmatched)", key, n)
		}
	}
}

// TestSchedulerStepReplay: two schedulers driven over the same virtual
// timeline apply identical event traces and counts — the determinism
// contract the sweep harness relies on.
func TestSchedulerStepReplay(t *testing.T) {
	run := func() ([]string, Counts) {
		rec := &recorder{}
		s := NewScheduler(testPlan(99), sim.NewVirtualClock(time.Unix(0, 0)), rec)
		for el := time.Duration(0); el <= testPlan(99).Duration; el += 50 * time.Millisecond {
			s.Step(el)
		}
		if s.Remaining() != 0 {
			t.Fatalf("%d events left after stepping past the window", s.Remaining())
		}
		return rec.Trace(), s.Counts()
	}
	t1, c1 := run()
	t2, c2 := run()
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Fatalf("same seed, different applied traces:\n--- run 1\n%s\n--- run 2\n%s",
			strings.Join(t1, "\n"), strings.Join(t2, "\n"))
	}
	if c1 != c2 {
		t.Fatalf("same seed, different counts: %v vs %v", c1, c2)
	}
	if c1.Applied != len(t1) || c1.Applied == 0 {
		t.Fatalf("counts %v disagree with trace length %d", c1, len(t1))
	}
	if c1.Crashes != c1.Restarts || c1.Blackouts != c1.Restores ||
		c1.Reclaims != c1.Recruits || c1.Degrades != c1.LinkHeals ||
		c1.MgrCrashes != c1.MgrRestarts {
		t.Fatalf("unbalanced down/up counts: %v", c1)
	}
}

// TestSchedulerClockDriven: the Start/Wait replay loop applies the whole
// schedule in order on a real clock.
func TestSchedulerClockDriven(t *testing.T) {
	p := Plan{
		Seed:         3,
		Duration:     250 * time.Millisecond,
		Hosts:        []string{"ws0"},
		CrashMean:    40 * time.Millisecond,
		RestartDelay: 10 * time.Millisecond,
	}
	rec := &recorder{}
	s := NewScheduler(p, sim.WallClock{}, rec)
	if len(s.Events()) == 0 {
		t.Fatal("empty schedule")
	}
	s.Start()
	s.Wait()
	if s.Remaining() != 0 {
		t.Fatalf("%d events not applied", s.Remaining())
	}
	want := make([]string, 0, len(s.Events()))
	probe := &recorder{}
	for _, ev := range s.Events() {
		applyTo(probe, ev)
		want = append(want, probe.trace[len(probe.trace)-1])
	}
	got := rec.Trace()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("applied trace diverges from schedule:\n--- got\n%s\n--- want\n%s",
			strings.Join(got, "\n"), strings.Join(want, "\n"))
	}
}

// TestSchedulerStop: Stop aborts the replay without applying the rest.
func TestSchedulerStop(t *testing.T) {
	p := Plan{
		Seed:         5,
		Duration:     time.Hour,
		Hosts:        []string{"ws0"},
		CrashMean:    10 * time.Minute,
		RestartDelay: time.Minute,
	}
	s := NewScheduler(p, sim.WallClock{}, &recorder{})
	s.Start()
	s.Stop()
	if s.Counts().Applied != 0 {
		t.Fatalf("events applied despite immediate Stop: %v", s.Counts())
	}
	s.Stop() // idempotent
}

// applyTo dispatches ev to target exactly as the scheduler does.
func applyTo(target Target, ev Event) {
	switch ev.Kind {
	case KindCrashIMD:
		target.CrashIMD(ev.Host)
	case KindRestartIMD:
		target.RestartIMD(ev.Host)
	case KindBlackoutManager:
		target.BlackoutManager()
	case KindRestoreManager:
		target.RestoreManager()
	case KindReclaimHost:
		target.ReclaimHost(ev.Host)
	case KindRecruitHost:
		target.RecruitHost(ev.Host)
	case KindDegradeLinks:
		target.DegradeLinks(ev.Host, ev.Link)
	case KindRestoreLinks:
		target.RestoreLinks(ev.Host)
	case KindCrashManager:
		target.CrashManager()
	case KindRestartManager:
		target.RestartManager()
	}
}
