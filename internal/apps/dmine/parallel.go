package dmine

import (
	"runtime"
	"sort"
	"sync"
)

// MineParallel is Mine with support counting fanned out across CPU
// cores, in the spirit of the parallel Apriori variants the paper cites
// (Mueller [13]). The transaction list is partitioned into shards; each
// worker counts candidate occurrences in its shard against a private
// trie, and the per-shard counts are merged. Results are identical to
// Mine (the tests assert it); only the counting passes parallelize —
// candidate generation and rule derivation are cheap.
func MineParallel(data []Transaction, minSupport int, minConfidence float64, maxLevel, workers int) Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(data) < 2*workers {
		return Mine(data, minSupport, minConfidence, maxLevel)
	}
	if maxLevel < 1 {
		maxLevel = 3
	}
	var res Result
	supports := map[string]int{}

	// Pass 1: parallel singleton counting with per-shard maps.
	shardCounts := make([]map[int]int, workers)
	parallelShards(data, workers, func(w int, shard []Transaction) {
		counts := make(map[int]int)
		for _, t := range shard {
			for _, it := range t {
				counts[it]++
			}
		}
		shardCounts[w] = counts
	})
	counts := map[int]int{}
	for _, sc := range shardCounts {
		for it, c := range sc {
			counts[it] += c
		}
	}
	res.Passes = 1
	var level []Frequent
	for it, c := range counts {
		if c >= minSupport {
			level = append(level, Frequent{Set: ItemSet{it}, Support: c})
		}
	}
	sortFrequent(level)
	res.Levels = append(res.Levels, level)
	for _, f := range level {
		supports[f.Set.key()] = f.Support
	}

	// Levels 2..maxLevel: each worker counts its shard into a private
	// trie; leaf counts merge by itemset key.
	for k := 2; k <= maxLevel && len(res.Levels[k-2]) > 0; k++ {
		candidates := generateCandidates(res.Levels[k-2])
		if len(candidates) == 0 {
			break
		}
		merged := map[string]int{}
		order := map[string]ItemSet{}
		shardFreq := make([][]Frequent, workers)
		parallelShards(data, workers, func(w int, shard []Transaction) {
			trie := newTrie()
			for _, c := range candidates {
				trie.insert(c)
			}
			for _, t := range shard {
				trie.countSubsets(t, 0)
			}
			var all []Frequent
			trie.collect(nil, &all)
			shardFreq[w] = all
		})
		for _, all := range shardFreq {
			for _, f := range all {
				sort.Ints(f.Set)
				key := f.Set.key()
				merged[key] += f.Support
				if _, ok := order[key]; !ok {
					order[key] = f.Set
				}
			}
		}
		res.Passes++
		var lvl []Frequent
		for key, support := range merged {
			if support >= minSupport {
				lvl = append(lvl, Frequent{Set: order[key], Support: support})
			}
		}
		sortFrequent(lvl)
		res.Levels = append(res.Levels, lvl)
		for _, f := range lvl {
			supports[f.Set.key()] = f.Support
		}
	}

	res.Rules = deriveRules(res.Levels, supports, minConfidence)
	return res
}

// parallelShards splits data into contiguous shards and runs fn on each
// concurrently.
func parallelShards(data []Transaction, workers int, fn func(w int, shard []Transaction)) {
	var wg sync.WaitGroup
	per := (len(data) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= len(data) {
			break
		}
		hi := lo + per
		if hi > len(data) {
			hi = len(data)
		}
		wg.Add(1)
		go func(w int, shard []Transaction) {
			defer wg.Done()
			fn(w, shard)
		}(w, data[lo:hi])
	}
	wg.Wait()
}
