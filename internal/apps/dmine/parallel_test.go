package dmine

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestMineParallelMatchesSequential(t *testing.T) {
	data := Generate(GenConfig{Transactions: 3000, AvgSize: 10, Items: 400, Patterns: 10, PatternLen: 3, Seed: 5})
	seq := Mine(data, 100, 0.5, 3)
	for _, workers := range []int{2, 3, 4, 8} {
		par := MineParallel(data, 100, 0.5, 3, workers)
		if !reflect.DeepEqual(par.Levels, seq.Levels) {
			t.Fatalf("workers=%d: frequent sets differ from sequential", workers)
		}
		if par.Passes != seq.Passes {
			t.Fatalf("workers=%d: passes %d != %d", workers, par.Passes, seq.Passes)
		}
		if len(par.Rules) != len(seq.Rules) {
			t.Fatalf("workers=%d: rules %d != %d", workers, len(par.Rules), len(seq.Rules))
		}
	}
}

func TestMineParallelSmallInputFallsBack(t *testing.T) {
	data := Generate(GenConfig{Transactions: 5, AvgSize: 3, Items: 10, Seed: 1})
	seq := Mine(data, 1, 0.5, 2)
	par := MineParallel(data, 1, 0.5, 2, 8)
	if !reflect.DeepEqual(par.Levels, seq.Levels) {
		t.Fatal("small-input fallback differs")
	}
}

func TestMineParallelDefaultWorkers(t *testing.T) {
	data := Generate(GenConfig{Transactions: 500, AvgSize: 6, Items: 80, Seed: 2})
	par := MineParallel(data, 20, 0.5, 3, 0) // 0 -> GOMAXPROCS
	seq := Mine(data, 20, 0.5, 3)
	if !reflect.DeepEqual(par.Levels, seq.Levels) {
		t.Fatal("default-worker run differs from sequential")
	}
}

// Property: parallel and sequential mining agree for arbitrary corpora
// and worker counts.
func TestPropertyParallelEquivalence(t *testing.T) {
	f := func(seed int64, workers uint8) bool {
		data := Generate(GenConfig{Transactions: 300, AvgSize: 5, Items: 60, Patterns: 5, PatternLen: 3, Seed: seed})
		w := int(workers%7) + 2
		seq := Mine(data, 10, 0.5, 3)
		par := MineParallel(data, 10, 0.5, 3, w)
		return reflect.DeepEqual(par.Levels, seq.Levels)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMineSequential(b *testing.B) {
	b.ReportAllocs()
	data := Generate(GenConfig{Transactions: 20000, AvgSize: 12, Items: 2000, Patterns: 30, PatternLen: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(data, 400, 0.5, 3)
	}
}

func BenchmarkMineParallel(b *testing.B) {
	b.ReportAllocs()
	data := Generate(GenConfig{Transactions: 20000, AvgSize: 12, Items: 2000, Patterns: 30, PatternLen: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MineParallel(data, 400, 0.5, 3, 0)
	}
}
