package dmine

import (
	"math/rand"
	"time"

	"dodo/internal/workload"
)

// Paper-scale constants for the Figure 7 experiment (§5.2.1).
const (
	// DatasetBytes is dmine's dataset: 10 M transactions, 1 GB.
	DatasetBytes = 1 << 30
	// RequestBytes: "almost all the read requests made by this
	// application are 128 KB each".
	RequestBytes = 128 << 10
	// ComputePerRequest is the candidate-counting work per 128 KB of
	// transactions, calibrated so the disk run is ~92% I/O-bound —
	// the regime in which the paper's 3.2x/2.6x speedups arise.
	ComputePerRequest = 3450 * time.Microsecond
)

// FigureTrace returns dmine's I/O pattern for the Figure 7 harness: one
// pass per Apriori level over the whole dataset in 128 KB requests. The
// miner's buffered reads interleave with heavy counting work and with
// accesses to candidate structures, so the disk sees effectively random
// positioning at 128 KB granularity rather than a pure sequential
// stream (this is what makes remote memory 3x faster here: it has no
// seeks to amortize).
func FigureTrace(passes int, seed int64) workload.Pattern {
	if passes < 1 {
		passes = 4
	}
	rng := rand.New(rand.NewSource(seed))
	blocks := int64(DatasetBytes / RequestBytes)
	perIter := make([][]workload.Request, passes)
	for p := range perIter {
		order := rng.Perm(int(blocks))
		reqs := make([]workload.Request, blocks)
		for i, b := range order {
			reqs[i] = workload.Request{Offset: int64(b) * RequestBytes, Size: RequestBytes}
		}
		perIter[p] = reqs
	}
	return workload.TracePattern{
		PatternName: "dmine",
		DatasetSize: DatasetBytes,
		ReqSize:     RequestBytes,
		PerIter:     perIter,
	}
}

// FigureSpec returns the benchmark spec for one dmine run. A run is one
// dominant scan over the corpus (the later Apriori levels count against
// in-memory candidate structures, AprioriTid-style, so they add compute
// but not another full-data scan). dmine keeps its regions after the run
// (§5.2.1: "remote memory regions are not deleted at the end of a run"),
// so the Figure 7 harness executes two runs against the same Dodo state:
// the first shows no speedup (it faults everything in from disk), the
// second runs entirely from remote memory.
func FigureSpec(seed int64) workload.Spec {
	return workload.Spec{
		Pattern:    FigureTrace(1, seed),
		Iterations: 1,
		Compute:    ComputePerRequest,
	}
}
