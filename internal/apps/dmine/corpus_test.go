package dmine

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCorpusRoundTrip(t *testing.T) {
	txs := Generate(GenConfig{Transactions: 200, AvgSize: 6, Items: 100, Seed: 1})
	blob, err := EncodeCorpus(txs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(blob)) != EncodedSize(txs) {
		t.Fatalf("EncodedSize = %d, actual %d", EncodedSize(txs), len(blob))
	}
	got, err := DecodeCorpus(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, txs) {
		t.Fatal("corpus round trip mismatch")
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	txs := Generate(GenConfig{Transactions: 500, AvgSize: 10, Items: 300, Seed: 2})
	path := filepath.Join(t.TempDir(), "corpus.dmn")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteCorpus(f, txs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := ReadCorpus(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, txs) {
		t.Fatal("file round trip mismatch")
	}
	// Mining the reloaded corpus gives the same result.
	a := Mine(txs, 20, 0.5, 3)
	b := Mine(got, 20, 0.5, 3)
	if !reflect.DeepEqual(a.Levels, b.Levels) {
		t.Fatal("mining results differ after serialization")
	}
}

func TestCorpusEmpty(t *testing.T) {
	blob, err := EncodeCorpus(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCorpus(blob)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty corpus round trip = %d txs, %v", len(got), err)
	}
}

func TestCorpusRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": {1, 2, 3, 4, 0, 0, 0, 0},
		"truncated count": {
			0x31, 0x4e, 0x4d, 0x44, // magic LE
		},
	}
	for name, blob := range cases {
		if _, err := DecodeCorpus(blob); !errors.Is(err, ErrBadCorpus) {
			t.Errorf("%s: err = %v, want ErrBadCorpus", name, err)
		}
	}
	// Truncated mid-transaction.
	good, _ := EncodeCorpus([]Transaction{{1, 2, 3}, {4, 5}})
	for cut := 9; cut < len(good); cut += 4 {
		if _, err := DecodeCorpus(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Non-ascending items.
	bad, _ := EncodeCorpus([]Transaction{{1, 2}})
	// items live at offsets 12 and 16; swap them
	copy(bad[12:16], []byte{2, 0, 0, 0})
	copy(bad[16:20], []byte{1, 0, 0, 0})
	if _, err := DecodeCorpus(bad); !errors.Is(err, ErrBadCorpus) {
		t.Errorf("non-ascending items accepted: %v", err)
	}
}

func TestCorpusRejectsNegativeItems(t *testing.T) {
	if _, err := EncodeCorpus([]Transaction{{-1}}); err == nil {
		t.Fatal("negative item accepted")
	}
}

// Property: any generated corpus round-trips exactly.
func TestPropertyCorpusRoundTrip(t *testing.T) {
	f := func(seed int64, count uint8) bool {
		txs := Generate(GenConfig{
			Transactions: int(count%50) + 1, AvgSize: 4, Items: 40, Seed: seed,
		})
		blob, err := EncodeCorpus(txs)
		if err != nil {
			return false
		}
		got, err := DecodeCorpus(blob)
		return err == nil && reflect.DeepEqual(got, txs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestPropertyDecodeGarbageNeverPanics(t *testing.T) {
	f := func(garbage []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("DecodeCorpus panicked: %v", r)
			}
		}()
		_, _ = DecodeCorpus(garbage)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeCorpus(b *testing.B) {
	txs := Generate(GenConfig{Transactions: 5000, AvgSize: 20, Items: 1000, Seed: 1})
	b.SetBytes(EncodedSize(txs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCorpus(&buf, txs); err != nil {
			b.Fatal(err)
		}
	}
}
