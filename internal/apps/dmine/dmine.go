// Package dmine reimplements the paper's dmine application (§5.2.1): an
// Apriori association-rule miner over retail transaction data, in the
// style of Agrawal & Srikant [3] and Mueller [13].
//
// The miner is a real, tested implementation (candidate generation with
// join + prune, support counting through a prefix trie standing in for
// the classic hash tree, rule derivation by confidence). The paper ran
// it on 10 million transactions (1 GB, average size 20 items, maximal
// potentially frequent set size 3); the FigureTrace function reproduces
// that configuration's I/O shape — a multi-scan pattern of 128 KB reads,
// one pass per Apriori level — for the Figure 7 experiment, while tests
// validate the algorithm at tractable scale.
package dmine

import (
	"fmt"
	"math/rand"
	"sort"
)

// Transaction is one market basket: an ascending list of item ids.
type Transaction []int

// GenConfig parameterizes the synthetic retail-data generator, which
// follows the classic Quest generator's outline: baskets draw from a
// pool of potentially frequent patterns plus random noise.
type GenConfig struct {
	// Transactions is the basket count.
	Transactions int
	// AvgSize is the mean basket size (paper: 20).
	AvgSize int
	// Items is the universe size.
	Items int
	// Patterns is the number of embedded frequent patterns.
	Patterns int
	// PatternLen is the maximal embedded pattern length (paper: 3).
	PatternLen int
	// Seed makes generation deterministic.
	Seed int64
}

// Generate produces the synthetic corpus.
func Generate(cfg GenConfig) []Transaction {
	if cfg.AvgSize < 1 {
		cfg.AvgSize = 20
	}
	if cfg.Items < cfg.AvgSize {
		cfg.Items = cfg.AvgSize * 50
	}
	if cfg.Patterns < 1 {
		cfg.Patterns = 20
	}
	if cfg.PatternLen < 2 {
		cfg.PatternLen = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Build the pattern pool.
	patterns := make([]Transaction, cfg.Patterns)
	for i := range patterns {
		n := 2 + rng.Intn(cfg.PatternLen-1)
		seen := map[int]bool{}
		var p Transaction
		for len(p) < n {
			it := rng.Intn(cfg.Items)
			if !seen[it] {
				seen[it] = true
				p = append(p, it)
			}
		}
		sort.Ints(p)
		patterns[i] = p
	}
	out := make([]Transaction, cfg.Transactions)
	for i := range out {
		size := 1 + rng.Intn(2*cfg.AvgSize-1) // mean ~= AvgSize
		seen := map[int]bool{}
		var t Transaction
		// Half the baskets embed a frequent pattern.
		if rng.Intn(2) == 0 {
			for _, it := range patterns[rng.Intn(len(patterns))] {
				if !seen[it] {
					seen[it] = true
					t = append(t, it)
				}
			}
		}
		for len(t) < size {
			it := rng.Intn(cfg.Items)
			if !seen[it] {
				seen[it] = true
				t = append(t, it)
			}
		}
		sort.Ints(t)
		out[i] = t
	}
	return out
}

// ItemSet is an ascending item-id list used as a candidate or frequent
// set.
type ItemSet []int

func (s ItemSet) String() string { return fmt.Sprint([]int(s)) }

// key serializes an ItemSet for map storage.
func (s ItemSet) key() string {
	b := make([]byte, 0, len(s)*3)
	for _, v := range s {
		b = append(b, byte(v>>16), byte(v>>8), byte(v))
	}
	return string(b)
}

// trieNode is a node of the support-counting prefix trie (the role the
// hash tree plays in the classic implementations).
type trieNode struct {
	children map[int]*trieNode
	count    int
	leaf     bool
}

func newTrie() *trieNode { return &trieNode{children: map[int]*trieNode{}} }

func (n *trieNode) insert(set ItemSet) {
	cur := n
	for _, it := range set {
		next, ok := cur.children[it]
		if !ok {
			next = newTrie()
			cur.children[it] = next
		}
		cur = next
	}
	cur.leaf = true
}

// countSubsets walks the transaction against the trie, incrementing
// every contained candidate.
func (n *trieNode) countSubsets(t Transaction, from int) {
	if n.leaf {
		n.count++
	}
	for i := from; i < len(t); i++ {
		if child, ok := n.children[t[i]]; ok {
			child.countSubsets(t, i+1)
		}
	}
}

// collect gathers leaf counts.
func (n *trieNode) collect(prefix ItemSet, out *[]Frequent) {
	if n.leaf {
		*out = append(*out, Frequent{Set: append(ItemSet(nil), prefix...), Support: n.count})
	}
	for it, child := range n.children {
		child.collect(append(prefix, it), out)
	}
}

// Frequent is a frequent itemset with its absolute support count.
type Frequent struct {
	Set     ItemSet
	Support int
}

// Result is the output of one mining run.
type Result struct {
	// Levels holds the frequent itemsets per Apriori level (index 0 =
	// 1-itemsets).
	Levels [][]Frequent
	// Passes is the number of full scans over the data performed — the
	// multi-scan count the I/O driver replays.
	Passes int
	// Rules are the derived association rules.
	Rules []Rule
}

// Rule is an association rule with confidence.
type Rule struct {
	Antecedent ItemSet
	Consequent ItemSet
	Support    int
	Confidence float64
}

// Mine runs Apriori at the given absolute support threshold, deriving
// rules at the given confidence threshold. maxLevel bounds the itemset
// size (the paper's "maximal potentially frequent set size" is 3).
func Mine(data []Transaction, minSupport int, minConfidence float64, maxLevel int) Result {
	if maxLevel < 1 {
		maxLevel = 3
	}
	var res Result
	supports := map[string]int{}

	// Pass 1: count singletons.
	counts := map[int]int{}
	for _, t := range data {
		for _, it := range t {
			counts[it]++
		}
	}
	res.Passes = 1
	var level []Frequent
	for it, c := range counts {
		if c >= minSupport {
			level = append(level, Frequent{Set: ItemSet{it}, Support: c})
		}
	}
	sortFrequent(level)
	res.Levels = append(res.Levels, level)
	for _, f := range level {
		supports[f.Set.key()] = f.Support
	}

	// Levels 2..maxLevel: candidate generation + one counting pass each.
	for k := 2; k <= maxLevel && len(res.Levels[k-2]) > 0; k++ {
		candidates := generateCandidates(res.Levels[k-2])
		if len(candidates) == 0 {
			break
		}
		trie := newTrie()
		for _, c := range candidates {
			trie.insert(c)
		}
		for _, t := range data {
			trie.countSubsets(t, 0)
		}
		res.Passes++
		var lvl []Frequent
		var all []Frequent
		trie.collect(nil, &all)
		for _, f := range all {
			if f.Support >= minSupport {
				sort.Ints(f.Set)
				lvl = append(lvl, f)
			}
		}
		sortFrequent(lvl)
		res.Levels = append(res.Levels, lvl)
		for _, f := range lvl {
			supports[f.Set.key()] = f.Support
		}
	}

	res.Rules = deriveRules(res.Levels, supports, minConfidence)
	return res
}

func sortFrequent(fs []Frequent) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i].Set, fs[j].Set
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// generateCandidates joins frequent (k-1)-sets sharing a (k-2)-prefix
// and prunes candidates with an infrequent subset — the classic
// apriori-gen.
func generateCandidates(prev []Frequent) []ItemSet {
	have := map[string]bool{}
	for _, f := range prev {
		have[f.Set.key()] = true
	}
	var out []ItemSet
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i].Set, prev[j].Set
			k := len(a)
			if !samePrefix(a, b, k-1) {
				continue
			}
			var cand ItemSet
			if a[k-1] < b[k-1] {
				cand = append(append(ItemSet(nil), a...), b[k-1])
			} else {
				cand = append(append(ItemSet(nil), b...), a[k-1])
			}
			if allSubsetsFrequent(cand, have) {
				out = append(out, cand)
			}
		}
	}
	return out
}

func samePrefix(a, b ItemSet, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent checks the Apriori pruning property.
func allSubsetsFrequent(cand ItemSet, have map[string]bool) bool {
	if len(cand) <= 2 {
		return true
	}
	sub := make(ItemSet, len(cand)-1)
	for drop := 0; drop < len(cand); drop++ {
		sub = sub[:0]
		for i, v := range cand {
			if i != drop {
				sub = append(sub, v)
			}
		}
		if !have[sub.key()] {
			return false
		}
	}
	return true
}

// deriveRules emits X -> Y for every frequent set split with confidence
// above the threshold.
func deriveRules(levels [][]Frequent, supports map[string]int, minConf float64) []Rule {
	var rules []Rule
	for k := 1; k < len(levels); k++ { // sets of size >= 2
		for _, f := range levels[k] {
			n := len(f.Set)
			// Enumerate non-empty proper subsets as antecedents.
			for mask := 1; mask < (1<<n)-1; mask++ {
				var ante, cons ItemSet
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						ante = append(ante, f.Set[i])
					} else {
						cons = append(cons, f.Set[i])
					}
				}
				anteSupport, ok := supports[ante.key()]
				if !ok || anteSupport == 0 {
					continue
				}
				conf := float64(f.Support) / float64(anteSupport)
				if conf >= minConf {
					rules = append(rules, Rule{Antecedent: ante, Consequent: cons, Support: f.Support, Confidence: conf})
				}
			}
		}
	}
	return rules
}
