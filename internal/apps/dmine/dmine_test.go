package dmine

import (
	"sort"
	"testing"
	"testing/quick"
)

// tiny corpus with known frequent sets.
func knownCorpus() []Transaction {
	// {1,2} appears 4x, {1,2,3} 3x, {4,5} 2x.
	return []Transaction{
		{1, 2, 3},
		{1, 2, 3},
		{1, 2, 3, 9},
		{1, 2, 7},
		{4, 5},
		{4, 5, 8},
		{6},
	}
}

func supportOf(res Result, set ...int) int {
	for _, lvl := range res.Levels {
		for _, f := range lvl {
			if len(f.Set) != len(set) {
				continue
			}
			same := true
			for i := range set {
				if f.Set[i] != set[i] {
					same = false
					break
				}
			}
			if same {
				return f.Support
			}
		}
	}
	return 0
}

func TestMineFindsKnownFrequentSets(t *testing.T) {
	res := Mine(knownCorpus(), 2, 0.5, 3)
	cases := []struct {
		set  []int
		want int
	}{
		{[]int{1}, 4}, {[]int{2}, 4}, {[]int{3}, 3}, {[]int{4}, 2}, {[]int{5}, 2},
		{[]int{1, 2}, 4}, {[]int{1, 3}, 3}, {[]int{2, 3}, 3}, {[]int{4, 5}, 2},
		{[]int{1, 2, 3}, 3},
	}
	for _, c := range cases {
		if got := supportOf(res, c.set...); got != c.want {
			t.Errorf("support(%v) = %d, want %d", c.set, got, c.want)
		}
	}
	// Infrequent items are pruned.
	if got := supportOf(res, 6); got != 0 {
		t.Errorf("singleton 6 with support 1 survived minSupport 2")
	}
	if got := supportOf(res, 9); got != 0 {
		t.Errorf("singleton 9 survived")
	}
}

func TestMinePassCount(t *testing.T) {
	res := Mine(knownCorpus(), 2, 0.5, 3)
	if res.Passes != 3 {
		t.Fatalf("Passes = %d, want 3 (levels 1-3)", res.Passes)
	}
	res1 := Mine(knownCorpus(), 2, 0.5, 1)
	if res1.Passes != 1 || len(res1.Levels) != 1 {
		t.Fatalf("maxLevel 1: passes %d levels %d", res1.Passes, len(res1.Levels))
	}
}

func TestRulesHaveCorrectConfidence(t *testing.T) {
	res := Mine(knownCorpus(), 2, 0.0, 2)
	// Rule {3} -> {1}: support({1,3})=3, support({3})=3 -> conf 1.0.
	found := false
	for _, r := range res.Rules {
		if len(r.Antecedent) == 1 && r.Antecedent[0] == 3 &&
			len(r.Consequent) == 1 && r.Consequent[0] == 1 {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("conf({3}->{1}) = %f, want 1.0", r.Confidence)
			}
		}
	}
	if !found {
		t.Fatal("rule {3}->{1} not derived")
	}
	// High threshold filters rules.
	strict := Mine(knownCorpus(), 2, 1.01, 3)
	if len(strict.Rules) != 0 {
		t.Fatalf("rules above confidence 1.01: %v", strict.Rules)
	}
}

func TestMineEmptyAndDegenerate(t *testing.T) {
	res := Mine(nil, 1, 0.5, 3)
	if len(res.Levels[0]) != 0 {
		t.Fatal("frequent sets from empty corpus")
	}
	res = Mine([]Transaction{{1}, {1}}, 3, 0.5, 3)
	if len(res.Levels[0]) != 0 {
		t.Fatal("support threshold above corpus size produced sets")
	}
}

func TestGenerateShape(t *testing.T) {
	data := Generate(GenConfig{Transactions: 500, AvgSize: 10, Items: 200, Seed: 1})
	if len(data) != 500 {
		t.Fatalf("transactions = %d", len(data))
	}
	totalItems := 0
	for i, tx := range data {
		if len(tx) == 0 {
			t.Fatalf("transaction %d empty", i)
		}
		if !sort.IntsAreSorted(tx) {
			t.Fatalf("transaction %d not sorted: %v", i, tx)
		}
		seen := map[int]bool{}
		for _, it := range tx {
			if it < 0 || it >= 200 {
				t.Fatalf("item %d out of universe", it)
			}
			if seen[it] {
				t.Fatalf("duplicate item in transaction %d", i)
			}
			seen[it] = true
		}
		totalItems += len(tx)
	}
	avg := float64(totalItems) / 500
	if avg < 7 || avg > 13 {
		t.Fatalf("average basket size = %.1f, want ~10", avg)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(GenConfig{Transactions: 50, AvgSize: 5, Items: 100, Seed: 7})
	b := Generate(GenConfig{Transactions: 50, AvgSize: 5, Items: 100, Seed: 7})
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("generation not deterministic")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestMiningGeneratedDataFindsEmbeddedPatterns(t *testing.T) {
	// Patterns are embedded in ~half of baskets, so with few patterns
	// some 2-sets must clear a 5% support threshold.
	data := Generate(GenConfig{Transactions: 2000, AvgSize: 8, Items: 500, Patterns: 5, PatternLen: 3, Seed: 3})
	res := Mine(data, 100, 0.3, 3)
	if len(res.Levels) < 2 || len(res.Levels[1]) == 0 {
		t.Fatal("no frequent 2-itemsets found in generated data with embedded patterns")
	}
}

// Property: every reported frequent set truly has the reported support,
// verified by brute force on small corpora.
func TestPropertySupportCountsExact(t *testing.T) {
	f := func(seed int64) bool {
		data := Generate(GenConfig{Transactions: 60, AvgSize: 4, Items: 20, Patterns: 3, PatternLen: 3, Seed: seed})
		res := Mine(data, 3, 0.5, 3)
		for _, lvl := range res.Levels {
			for _, fr := range lvl {
				brute := 0
				for _, tx := range data {
					if containsAll(tx, fr.Set) {
						brute++
					}
				}
				if brute != fr.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Apriori monotonicity — every subset of a frequent set is
// frequent.
func TestPropertyAprioriMonotone(t *testing.T) {
	f := func(seed int64) bool {
		data := Generate(GenConfig{Transactions: 80, AvgSize: 5, Items: 25, Patterns: 4, PatternLen: 3, Seed: seed})
		res := Mine(data, 4, 0.5, 3)
		have := map[string]bool{}
		for _, lvl := range res.Levels {
			for _, fr := range lvl {
				have[fr.Set.key()] = true
			}
		}
		for k := 1; k < len(res.Levels); k++ {
			for _, fr := range res.Levels[k] {
				sub := make(ItemSet, 0, len(fr.Set)-1)
				for drop := range fr.Set {
					sub = sub[:0]
					for i, v := range fr.Set {
						if i != drop {
							sub = append(sub, v)
						}
					}
					if !have[sub.key()] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func containsAll(tx Transaction, set ItemSet) bool {
	i := 0
	for _, it := range tx {
		if i < len(set) && it == set[i] {
			i++
		}
	}
	return i == len(set)
}

func TestFigureTraceShape(t *testing.T) {
	p := FigureTrace(2, 1)
	if p.Name() != "dmine" || p.Dataset() != DatasetBytes || p.RequestSize() != RequestBytes {
		t.Fatalf("trace identity wrong: %s %d %d", p.Name(), p.Dataset(), p.RequestSize())
	}
	reqs := p.Iteration(0)
	if int64(len(reqs)) != DatasetBytes/RequestBytes {
		t.Fatalf("requests per pass = %d", len(reqs))
	}
	// Every block covered exactly once per pass.
	seen := map[int64]bool{}
	for _, r := range reqs {
		if r.Size != RequestBytes || r.Offset%RequestBytes != 0 {
			t.Fatalf("bad request %+v", r)
		}
		if seen[r.Offset] {
			t.Fatalf("offset %d repeated in one pass", r.Offset)
		}
		seen[r.Offset] = true
	}
}

func BenchmarkMine10kTransactions(b *testing.B) {
	b.ReportAllocs()
	data := Generate(GenConfig{Transactions: 10000, AvgSize: 10, Items: 1000, Patterns: 20, PatternLen: 3, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(data, 200, 0.5, 3)
	}
}
