package dmine

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Corpus serialization: the on-disk transaction format the paper's dmine
// reads in 128 KB requests. The layout is a little-endian stream:
//
//	magic   uint32  'DMN1'
//	count   uint32  number of transactions
//	repeat count times:
//	  n     uint32  items in this transaction
//	  item  uint32 x n (ascending)
//
// WriteCorpus/ReadCorpus stream through bufio so corpora larger than
// memory encode in one pass; EncodeCorpus/DecodeCorpus are the in-memory
// conveniences used by tests and examples.

// corpusMagic marks a serialized corpus.
const corpusMagic = 0x444d4e31 // "DMN1"

// ErrBadCorpus reports a malformed serialized corpus.
var ErrBadCorpus = errors.New("dmine: malformed corpus")

// WriteCorpus streams transactions to w.
func WriteCorpus(w io.Writer, txs []Transaction) error {
	bw := bufio.NewWriter(w)
	var scratch [4]byte
	put := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := put(corpusMagic); err != nil {
		return err
	}
	if err := put(uint32(len(txs))); err != nil {
		return err
	}
	for _, t := range txs {
		if err := put(uint32(len(t))); err != nil {
			return err
		}
		for _, it := range t {
			if it < 0 {
				return fmt.Errorf("dmine: negative item %d", it)
			}
			if err := put(uint32(it)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadCorpus streams transactions from r.
func ReadCorpus(r io.Reader) ([]Transaction, error) {
	br := bufio.NewReader(r)
	var scratch [4]byte
	get := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:]), nil
	}
	magic, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadCorpus, err)
	}
	if magic != corpusMagic {
		return nil, fmt.Errorf("%w: magic %08x", ErrBadCorpus, magic)
	}
	count, err := get()
	if err != nil {
		return nil, fmt.Errorf("%w: missing count: %v", ErrBadCorpus, err)
	}
	const maxTransactions = 1 << 28
	if count > maxTransactions {
		return nil, fmt.Errorf("%w: %d transactions", ErrBadCorpus, count)
	}
	out := make([]Transaction, count)
	for i := range out {
		n, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: truncated at transaction %d", ErrBadCorpus, i)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: transaction %d has %d items", ErrBadCorpus, i, n)
		}
		t := make(Transaction, n)
		prev := -1
		for j := range t {
			v, err := get()
			if err != nil {
				return nil, fmt.Errorf("%w: truncated item in transaction %d", ErrBadCorpus, i)
			}
			t[j] = int(v)
			if t[j] <= prev {
				return nil, fmt.Errorf("%w: transaction %d items not ascending", ErrBadCorpus, i)
			}
			prev = t[j]
		}
		out[i] = t
	}
	return out, nil
}

// EncodeCorpus serializes in memory.
func EncodeCorpus(txs []Transaction) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteCorpus(&buf, txs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCorpus parses an in-memory corpus.
func DecodeCorpus(b []byte) ([]Transaction, error) {
	return ReadCorpus(bytes.NewReader(b))
}

// EncodedSize returns the exact serialized size without encoding.
func EncodedSize(txs []Transaction) int64 {
	n := int64(8) // magic + count
	for _, t := range txs {
		n += 4 + 4*int64(len(t))
	}
	return n
}
