package lu

import (
	"time"

	"dodo/internal/workload"
)

// Paper-scale constants for the Figure 7 experiment (§5.2.1): an
// 8192x8192 double-precision matrix (512 MiB, which the paper reports
// as "536 MB" in decimal megabytes), 64-column slabs, stored across 8
// files.
const (
	FigureN        = 8192
	FigureSlabCols = 64
	FigureFiles    = 8
	elemSize       = 8
)

// FigureDatasetBytes is the matrix size on disk.
const FigureDatasetBytes = int64(FigureN) * FigureN * elemSize

// computeRate is the effective factorization rate (FLOP/s) of the
// paper's 200 MHz Pentium Pro on out-of-core panel updates, calibrated
// so the no-Dodo run takes the paper's ~6 hours with roughly a quarter
// of it in I/O (the regime yielding speedups of 1.2 / 1.15).
const computeRate = 23e6

// FigureTrace generates lu's I/O request trace: the left-looking
// triangle scan. Processing slab k reads, for every j <= k, the rows at
// and below panel j's diagonal — and the matrix is striped across 8
// files (torus-wrap row blocks), so each logical slab read issues 8
// requests of 1/8 the height. That striping is exactly what produces
// the paper's request-size distribution (12 KB to 516 KB, average
// ~330 KB, "most of its I/O requests are reads").
//
// Returned alongside is the pure compute time of the factorization at
// the calibrated rate.
func FigureTrace() (workload.Pattern, time.Duration) {
	slabs := FigureN / FigureSlabCols
	slabBytes := int64(FigureN) * FigureSlabCols * elemSize // 4 MiB
	stripeRows := FigureN / FigureFiles

	var reqs []workload.Request
	var flops float64
	for k := 0; k < slabs; k++ {
		// Read every previous panel's at/below-diagonal part, striped
		// over the 8 files.
		for j := 0; j <= k; j++ {
			rowsNeeded := FigureN - j*FigureSlabCols
			perStripe := rowsNeeded / FigureFiles
			if perStripe < FigureSlabCols {
				perStripe = FigureSlabCols
			}
			for f := 0; f < FigureFiles; f++ {
				size := int64(perStripe) * FigureSlabCols * elemSize
				// File offset within the interleaved layout: slab j's
				// stripe f region.
				off := int64(j)*slabBytes + int64(f)*int64(stripeRows)*FigureSlabCols*elemSize
				if off+size > FigureDatasetBytes {
					size = FigureDatasetBytes - off
				}
				if size <= 0 {
					continue
				}
				reqs = append(reqs, workload.Request{Offset: off, Size: size})
			}
			if j < k {
				// Triangular solve + GEMM flops for panel j applied to
				// slab k.
				m := float64(FigureN - j*FigureSlabCols)
				b := float64(FigureSlabCols)
				flops += 2 * m * b * b
			}
		}
		// Panel factorization flops.
		m := float64(FigureN - k*FigureSlabCols)
		b := float64(FigureSlabCols)
		flops += m * b * b
		// Write slab k back, striped.
		for f := 0; f < FigureFiles; f++ {
			off := int64(k)*slabBytes + int64(f)*int64(stripeRows)*FigureSlabCols*elemSize
			reqs = append(reqs, workload.Request{Offset: off, Size: slabBytes / FigureFiles, Write: true})
		}
	}
	compute := time.Duration(flops / computeRate * float64(time.Second))
	pattern := workload.TracePattern{
		PatternName: "lu",
		DatasetSize: FigureDatasetBytes,
		ReqSize:     slabBytes / FigureFiles, // nominal 512 KiB stripe
		Trace:       reqs,
	}
	return pattern, compute
}

// FigureSpec returns the benchmark spec for one lu run: a single
// factorization with the compute time spread evenly across requests.
// Unlike dmine, lu deletes its regions at completion (§5.2.1), so every
// run re-faults from disk; the speedup comes from re-reading each slab
// many times within the triangle scan of a single run.
func FigureSpec() workload.Spec {
	pattern, compute := FigureTrace()
	n := len(pattern.(workload.TracePattern).Trace)
	perReq := compute / time.Duration(n)
	return workload.Spec{
		Pattern:    pattern,
		Iterations: 1,
		Compute:    perReq,
	}
}
