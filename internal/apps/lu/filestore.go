package lu

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// FileStore keeps the matrix on disk the way the paper's lu does: the
// data is striped across several files (the paper used 8), each file
// holding a horizontal band of rows. A slab (column block) therefore
// spans all files, which is what shapes lu's request-size distribution:
// reading one slab's at/below-diagonal portion issues one request per
// file, each 1/files of the slab height.
type FileStore struct {
	dir   string
	files []*os.File
	rows  int
	cols  int
	slabs int
	// stripeRows is rows per file band.
	stripeRows int
}

var _ SlabStore = (*FileStore)(nil)

// CreateFileStore lays out an empty rows x (cols*slabs) matrix across
// nfiles band files in dir. The opened band files move into st.files;
// FileStore.Close owns them from there.
//
// dodo:transfers(file)
func CreateFileStore(dir string, rows, cols, slabs, nfiles int) (*FileStore, error) {
	if rows%nfiles != 0 {
		return nil, fmt.Errorf("lu: rows %d not divisible by %d files", rows, nfiles)
	}
	st := &FileStore{
		dir:        dir,
		rows:       rows,
		cols:       cols,
		slabs:      slabs,
		stripeRows: rows / nfiles,
	}
	for i := 0; i < nfiles; i++ {
		f, err := os.OpenFile(filepath.Join(dir, fmt.Sprintf("band%02d.mat", i)), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
		if err != nil {
			_ = st.Close()
			return nil, fmt.Errorf("lu: creating band file %d: %w", i, err)
		}
		// Size the band: stripeRows x (cols*slabs) doubles.
		if err := f.Truncate(int64(st.stripeRows) * int64(cols) * int64(slabs) * elemSize); err != nil {
			_ = f.Close()
			_ = st.Close()
			return nil, fmt.Errorf("lu: sizing band file %d: %w", i, err)
		}
		st.files = append(st.files, f)
	}
	return st, nil
}

// Close releases the band files.
func (st *FileStore) Close() error {
	var first error
	for _, f := range st.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	st.files = nil
	return first
}

// Slabs returns the slab count.
func (st *FileStore) Slabs() int { return st.slabs }

// SlabCols returns columns per slab.
func (st *FileStore) SlabCols() int { return st.cols }

// Rows returns the row count.
func (st *FileStore) Rows() int { return st.rows }

// bandOffset returns the byte offset of slab j within a band file: each
// band stores its rows column-major, slab after slab.
func (st *FileStore) bandOffset(j int) int64 {
	return int64(j) * int64(st.stripeRows) * int64(st.cols) * elemSize
}

// ReadSlab gathers slab j from every band file.
func (st *FileStore) ReadSlab(j int, dst []float64) error {
	if j < 0 || j >= st.slabs {
		return fmt.Errorf("lu: slab %d out of range", j)
	}
	buf := make([]byte, st.stripeRows*st.cols*elemSize)
	for b, f := range st.files {
		if _, err := f.ReadAt(buf, st.bandOffset(j)); err != nil {
			return fmt.Errorf("lu: reading slab %d band %d: %w", j, b, err)
		}
		// Band b holds rows [b*stripeRows, (b+1)*stripeRows), stored
		// column-major within the band.
		base := b * st.stripeRows
		for c := 0; c < st.cols; c++ {
			for r := 0; r < st.stripeRows; r++ {
				bits := binary.LittleEndian.Uint64(buf[(c*st.stripeRows+r)*elemSize:])
				dst[c*st.rows+base+r] = math.Float64frombits(bits)
			}
		}
	}
	return nil
}

// WriteSlab scatters slab j across the band files.
func (st *FileStore) WriteSlab(j int, src []float64) error {
	if j < 0 || j >= st.slabs {
		return fmt.Errorf("lu: slab %d out of range", j)
	}
	buf := make([]byte, st.stripeRows*st.cols*elemSize)
	for b, f := range st.files {
		base := b * st.stripeRows
		for c := 0; c < st.cols; c++ {
			for r := 0; r < st.stripeRows; r++ {
				binary.LittleEndian.PutUint64(buf[(c*st.stripeRows+r)*elemSize:],
					math.Float64bits(src[c*st.rows+base+r]))
			}
		}
		if _, err := f.WriteAt(buf, st.bandOffset(j)); err != nil {
			return fmt.Errorf("lu: writing slab %d band %d: %w", j, b, err)
		}
	}
	return nil
}

// LoadMatrix writes a full matrix into the store, slab by slab.
func (st *FileStore) LoadMatrix(m *Matrix) error {
	if m.N != st.rows || st.cols*st.slabs != m.N {
		return fmt.Errorf("lu: matrix %d does not fit store %dx%d", m.N, st.rows, st.cols*st.slabs)
	}
	slab := make([]float64, st.rows*st.cols)
	for j := 0; j < st.slabs; j++ {
		copy(slab, m.Data[j*st.cols*st.rows:(j+1)*st.cols*st.rows])
		if err := st.WriteSlab(j, slab); err != nil {
			return err
		}
	}
	return nil
}

// ExtractMatrix reassembles the stored matrix.
func (st *FileStore) ExtractMatrix() (*Matrix, error) {
	m := NewMatrix(st.rows)
	slab := make([]float64, st.rows*st.cols)
	for j := 0; j < st.slabs; j++ {
		if err := st.ReadSlab(j, slab); err != nil {
			return nil, err
		}
		copy(m.Data[j*st.cols*st.rows:(j+1)*st.cols*st.rows], slab)
	}
	return m, nil
}
