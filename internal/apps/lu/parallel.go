package lu

import (
	"errors"
	"runtime"
	"sync"
)

// FactorParallel is Factor with the panel updates spread across CPU
// cores. The left-looking outer structure is inherently sequential
// (panel j's update must see panels 0..j-1 already applied), but within
// one applyPanel call every column of the current slab is independent:
// the triangular solve and the trailing rank-b update each touch one
// column at a time. Results are bitwise identical to Factor (the tests
// assert it) because the per-column arithmetic is unchanged — only the
// column order varies, and columns never interact.
func FactorParallel(st SlabStore, workers int) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := st.Rows()
	b := st.SlabCols()
	slabs := st.Slabs()
	if n != b*slabs {
		return errors.New("lu: store geometry inconsistent")
	}
	if workers == 1 || b < 2 {
		return Factor(st)
	}
	cur := make([]float64, n*b)
	prev := make([]float64, n*b)
	for k := 0; k < slabs; k++ {
		if err := st.ReadSlab(k, cur); err != nil {
			return err
		}
		for j := 0; j < k; j++ {
			if err := st.ReadSlab(j, prev); err != nil {
				return err
			}
			applyPanelParallel(cur, prev, n, b, j, workers)
		}
		if err := factorPanel(cur, n, b, k); err != nil {
			return err
		}
		if err := st.WriteSlab(k, cur); err != nil {
			return err
		}
	}
	return nil
}

// applyPanelParallel applies factored panel j to the current slab with
// the per-column work fanned across workers.
func applyPanelParallel(cur, prev []float64, n, b, j, workers int) {
	d := j * b
	var wg sync.WaitGroup
	per := (b + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		if lo >= b {
			break
		}
		hi := lo + per
		if hi > b {
			hi = b
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for col := lo; col < hi; col++ {
				c := cur[col*n : col*n+n]
				// Forward substitution against the unit-lower diagonal
				// block of panel j.
				for r := 0; r < b; r++ {
					sum := c[d+r]
					for t := 0; t < r; t++ {
						sum -= prev[t*n+d+r] * c[d+t]
					}
					c[d+r] = sum
				}
				// Trailing update of this column below the block.
				for t := 0; t < b; t++ {
					u := c[d+t]
					if u == 0 {
						continue
					}
					l := prev[t*n:]
					for r := d + b; r < n; r++ {
						c[r] -= l[r] * u
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
}
