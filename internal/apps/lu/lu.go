// Package lu reimplements the paper's lu application (§5.2.1): dense LU
// decomposition of an out-of-core matrix in the style of Hendrickson &
// Womble [9].
//
// The factorization is a real, tested left-looking slab algorithm: the
// matrix is stored in column slabs (the paper used 64-column slabs of an
// 8192x8192 double matrix, 512 MiB across 8 files); factoring slab k
// first applies the updates of every previous slab (the triangle-scan
// read pattern the paper describes), then factors the panel in place.
// Pivoting is omitted — like most out-of-core solvers of the era, the
// input is assumed diagonally dominant.
package lu

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense column-major matrix.
type Matrix struct {
	N    int
	Data []float64 // column-major: a(i,j) = Data[j*N+i]
}

// NewMatrix allocates an NxN zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns a(i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[j*m.N+i] }

// Set assigns a(i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[j*m.N+i] = v }

// Clone copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// RandomDiagDominant generates a random diagonally dominant matrix,
// which keeps unpivoted LU numerically stable.
func RandomDiagDominant(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n)
	for j := 0; j < n; j++ {
		var colSum float64
		for i := 0; i < n; i++ {
			v := rng.Float64()*2 - 1
			m.Set(i, j, v)
			colSum += math.Abs(v)
		}
		m.Set(j, j, colSum+1) // dominance
	}
	return m
}

// SlabStore is the out-of-core storage behind the factorization: slabs
// are read and written by index. Implementations decide where the bytes
// live (memory for tests, files, or Dodo regions through the
// region-management library).
type SlabStore interface {
	// Slabs returns the slab count; SlabCols the columns per slab;
	// Rows the row count.
	Slabs() int
	SlabCols() int
	Rows() int
	// ReadSlab fills dst (Rows x SlabCols column-major) with slab j.
	ReadSlab(j int, dst []float64) error
	// WriteSlab stores slab j from src.
	WriteSlab(j int, src []float64) error
}

// MemStore is an in-memory SlabStore.
type MemStore struct {
	rows, cols, slabs int
	data              [][]float64
}

var _ SlabStore = (*MemStore)(nil)

// NewMemStore builds an empty store for an rows x (slabs*cols) matrix.
func NewMemStore(rows, cols, slabs int) *MemStore {
	d := make([][]float64, slabs)
	for i := range d {
		d[i] = make([]float64, rows*cols)
	}
	return &MemStore{rows: rows, cols: cols, slabs: slabs, data: d}
}

// FromMatrix loads a square matrix into slab storage.
func FromMatrix(m *Matrix, slabCols int) (*MemStore, error) {
	if m.N%slabCols != 0 {
		return nil, fmt.Errorf("lu: n=%d not divisible by slab width %d", m.N, slabCols)
	}
	slabs := m.N / slabCols
	st := NewMemStore(m.N, slabCols, slabs)
	for s := 0; s < slabs; s++ {
		copy(st.data[s], m.Data[s*slabCols*m.N:(s+1)*slabCols*m.N])
	}
	return st, nil
}

// ToMatrix reassembles the stored slabs into a matrix.
func (st *MemStore) ToMatrix() *Matrix {
	m := NewMatrix(st.rows)
	for s := 0; s < st.slabs; s++ {
		copy(m.Data[s*st.cols*st.rows:(s+1)*st.cols*st.rows], st.data[s])
	}
	return m
}

// Slabs returns the slab count.
func (st *MemStore) Slabs() int { return st.slabs }

// SlabCols returns columns per slab.
func (st *MemStore) SlabCols() int { return st.cols }

// Rows returns the row count.
func (st *MemStore) Rows() int { return st.rows }

// ReadSlab copies slab j out.
func (st *MemStore) ReadSlab(j int, dst []float64) error {
	if j < 0 || j >= st.slabs {
		return fmt.Errorf("lu: slab %d out of range", j)
	}
	copy(dst, st.data[j])
	return nil
}

// WriteSlab copies slab j in.
func (st *MemStore) WriteSlab(j int, src []float64) error {
	if j < 0 || j >= st.slabs {
		return fmt.Errorf("lu: slab %d out of range", j)
	}
	copy(st.data[j], src)
	return nil
}

// Factor performs the out-of-core left-looking LU factorization in
// place: after it returns, the store holds L (unit lower triangular,
// diagonal implicit) and U packed in the usual LAPACK-style layout.
//
// For each slab k it reads slabs 0..k-1 once — the triangle-scan I/O
// pattern of §5.2.1 — applies their updates, factors the panel, and
// writes slab k back once.
func Factor(st SlabStore) error {
	n := st.Rows()
	b := st.SlabCols()
	slabs := st.Slabs()
	if n != b*slabs {
		return errors.New("lu: store geometry inconsistent")
	}
	cur := make([]float64, n*b)
	prev := make([]float64, n*b)
	for k := 0; k < slabs; k++ {
		if err := st.ReadSlab(k, cur); err != nil {
			return err
		}
		// Left-looking updates from every previous panel.
		for j := 0; j < k; j++ {
			if err := st.ReadSlab(j, prev); err != nil {
				return err
			}
			applyPanel(cur, prev, n, b, j)
		}
		// Factor the diagonal block and compute the sub-diagonal L.
		if err := factorPanel(cur, n, b, k); err != nil {
			return err
		}
		if err := st.WriteSlab(k, cur); err != nil {
			return err
		}
	}
	return nil
}

// applyPanel applies factored panel j (stored in prev) to the current
// slab: triangular solve for the U block, then the trailing GEMM.
func applyPanel(cur, prev []float64, n, b, j int) {
	d := j * b // panel j's diagonal row offset
	// U block: solve L(d:d+b, d:d+b) * X = cur(d:d+b, :), unit lower.
	for col := 0; col < b; col++ {
		c := cur[col*n : col*n+n]
		// Forward substitution against the unit-lower diagonal block:
		// L(r,t) of panel j lives at prev[t*n + d + r].
		for r := 0; r < b; r++ {
			sum := c[d+r]
			for t := 0; t < r; t++ {
				sum -= prev[t*n+d+r] * c[d+t]
			}
			c[d+r] = sum
		}
	}
	// Trailing update: cur(d+b:n, :) -= L(d+b:n, panel) * U block.
	for col := 0; col < b; col++ {
		c := cur[col*n : col*n+n]
		for t := 0; t < b; t++ {
			u := c[d+t]
			if u == 0 {
				continue
			}
			l := prev[t*n:]
			for r := d + b; r < n; r++ {
				c[r] -= l[r] * u
			}
		}
	}
}

// factorPanel factors the kth panel in place (unpivoted right-looking
// within the panel).
func factorPanel(cur []float64, n, b, k int) error {
	d := k * b
	for col := 0; col < b; col++ {
		c := cur[col*n : col*n+n]
		piv := c[d+col]
		if piv == 0 {
			return fmt.Errorf("lu: zero pivot at column %d", d+col)
		}
		inv := 1 / piv
		for r := d + col + 1; r < n; r++ {
			c[r] *= inv
		}
		// Update the remaining columns of the panel.
		for rest := col + 1; rest < b; rest++ {
			rc := cur[rest*n : rest*n+n]
			u := rc[d+col]
			if u == 0 {
				continue
			}
			for r := d + col + 1; r < n; r++ {
				rc[r] -= c[r] * u
			}
		}
	}
	return nil
}

// Reconstruct multiplies the packed L and U factors back into a matrix
// (for verification).
func Reconstruct(lu *Matrix) *Matrix {
	n := lu.N
	out := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			kmax := i
			if j < i {
				kmax = j
			}
			sum := 0.0
			for k := 0; k <= kmax; k++ {
				var l float64
				if k == i {
					l = 1 // unit diagonal
				} else if k < i {
					l = lu.At(i, k)
				}
				u := 0.0
				if k <= j {
					u = lu.At(k, j)
				}
				sum += l * u
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// MaxAbsDiff returns max |a-b| over all entries.
func MaxAbsDiff(a, b *Matrix) float64 {
	var max float64
	for i := range a.Data {
		d := math.Abs(a.Data[i] - b.Data[i])
		if d > max {
			max = d
		}
	}
	return max
}
