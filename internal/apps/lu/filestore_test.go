package lu

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	const n, cols, files = 32, 8, 4
	st, err := CreateFileStore(t.TempDir(), n, cols, n/cols, files)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	m := RandomDiagDominant(n, 1)
	if err := st.LoadMatrix(m); err != nil {
		t.Fatal(err)
	}
	got, err := st.ExtractMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if diff := MaxAbsDiff(got, m); diff != 0 {
		t.Fatalf("file store round trip differs by %g", diff)
	}
}

func TestFactorOverFileStoreMatchesMemStore(t *testing.T) {
	const n, cols, files = 48, 8, 4
	m := RandomDiagDominant(n, 7)

	fst, err := CreateFileStore(t.TempDir(), n, cols, n/cols, files)
	if err != nil {
		t.Fatal(err)
	}
	defer fst.Close()
	if err := fst.LoadMatrix(m); err != nil {
		t.Fatal(err)
	}
	if err := Factor(fst); err != nil {
		t.Fatal(err)
	}
	fromFile, err := fst.ExtractMatrix()
	if err != nil {
		t.Fatal(err)
	}

	mst, err := FromMatrix(m, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := Factor(mst); err != nil {
		t.Fatal(err)
	}
	fromMem := mst.ToMatrix()

	if diff := MaxAbsDiff(fromFile, fromMem); diff > 1e-12 {
		t.Fatalf("file-store factorization differs from memory by %g", diff)
	}
	// And it reconstructs the original.
	if diff := MaxAbsDiff(Reconstruct(fromFile), m); diff > 1e-9 {
		t.Fatalf("||LU - A|| = %g", diff)
	}
}

func TestFileStoreGeometryChecks(t *testing.T) {
	if _, err := CreateFileStore(t.TempDir(), 30, 8, 4, 4); err == nil {
		t.Fatal("rows not divisible by files accepted")
	}
	st, err := CreateFileStore(t.TempDir(), 32, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	buf := make([]float64, 32*8)
	if err := st.ReadSlab(-1, buf); err == nil {
		t.Fatal("ReadSlab(-1) accepted")
	}
	if err := st.WriteSlab(4, buf); err == nil {
		t.Fatal("WriteSlab(4) accepted")
	}
	bad := NewMatrix(16)
	if err := st.LoadMatrix(bad); err == nil {
		t.Fatal("mismatched matrix accepted")
	}
}

func TestFileStoreCreatesBandFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := CreateFileStore(dir, 32, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		path := filepath.Join(dir, "band0"+string(rune('0'+i))+".mat")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("band file %d missing: %v", i, err)
		}
		want := int64(8) * 8 * 4 * 8 // stripeRows x cols x slabs x 8B
		if fi.Size() != want {
			t.Fatalf("band %d size = %d, want %d", i, fi.Size(), want)
		}
	}
}
