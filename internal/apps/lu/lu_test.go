package lu

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"dodo/internal/workload"
)

// naiveLU computes unpivoted Doolittle LU in place for reference.
func naiveLU(m *Matrix) *Matrix {
	a := m.Clone()
	n := a.N
	for k := 0; k < n; k++ {
		piv := a.At(k, k)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/piv)
		}
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k)
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-lik*a.At(k, j))
			}
		}
	}
	return a
}

func TestFactorMatchesNaiveLU(t *testing.T) {
	const n, b = 64, 8
	m := RandomDiagDominant(n, 1)
	st, err := FromMatrix(m, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := Factor(st); err != nil {
		t.Fatal(err)
	}
	got := st.ToMatrix()
	want := naiveLU(m)
	if diff := MaxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("out-of-core LU differs from naive LU by %g", diff)
	}
}

func TestFactorReconstructsOriginal(t *testing.T) {
	for _, cfg := range []struct{ n, b int }{{16, 4}, {32, 8}, {48, 16}, {64, 64}} {
		m := RandomDiagDominant(cfg.n, int64(cfg.n))
		st, err := FromMatrix(m, cfg.b)
		if err != nil {
			t.Fatal(err)
		}
		if err := Factor(st); err != nil {
			t.Fatalf("n=%d b=%d: %v", cfg.n, cfg.b, err)
		}
		recon := Reconstruct(st.ToMatrix())
		if diff := MaxAbsDiff(recon, m); diff > 1e-8*float64(cfg.n) {
			t.Fatalf("n=%d b=%d: ||LU - A|| = %g", cfg.n, cfg.b, diff)
		}
	}
}

// Property: LU reconstruction holds for arbitrary seeds and block
// geometries.
func TestPropertyFactorCorrect(t *testing.T) {
	f := func(seed int64, bsel uint8) bool {
		n := 32
		blocks := []int{4, 8, 16, 32}
		b := blocks[int(bsel)%len(blocks)]
		m := RandomDiagDominant(n, seed)
		st, err := FromMatrix(m, b)
		if err != nil {
			return false
		}
		if err := Factor(st); err != nil {
			return false
		}
		recon := Reconstruct(st.ToMatrix())
		return MaxAbsDiff(recon, m) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorRejectsBadGeometry(t *testing.T) {
	st := NewMemStore(16, 4, 3) // 16 != 4*3
	if err := Factor(st); err == nil {
		t.Fatal("Factor accepted inconsistent geometry")
	}
	m := NewMatrix(8)
	if _, err := FromMatrix(m, 3); err == nil {
		t.Fatal("FromMatrix accepted non-divisible slab width")
	}
}

func TestFactorZeroPivot(t *testing.T) {
	m := NewMatrix(4) // all zeros: immediate zero pivot
	st, err := FromMatrix(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Factor(st); err == nil {
		t.Fatal("Factor accepted a singular matrix")
	}
}

func TestMemStoreBounds(t *testing.T) {
	st := NewMemStore(8, 2, 4)
	buf := make([]float64, 16)
	if err := st.ReadSlab(-1, buf); err == nil {
		t.Fatal("ReadSlab(-1) succeeded")
	}
	if err := st.WriteSlab(4, buf); err == nil {
		t.Fatal("WriteSlab(4) succeeded")
	}
}

func TestDiagonallyDominantGeneration(t *testing.T) {
	m := RandomDiagDominant(32, 9)
	for j := 0; j < 32; j++ {
		var off float64
		for i := 0; i < 32; i++ {
			if i != j {
				off += math.Abs(m.At(i, j))
			}
		}
		if math.Abs(m.At(j, j)) <= off {
			t.Fatalf("column %d not diagonally dominant", j)
		}
	}
}

func TestFigureTraceShape(t *testing.T) {
	pattern, compute := FigureTrace()
	tp := pattern.(workload.TracePattern)
	reqs := tp.Trace
	slabs := FigureN / FigureSlabCols

	wantReads := 0
	for k := 0; k < slabs; k++ {
		wantReads += (k + 1) * FigureFiles
	}
	wantWrites := slabs * FigureFiles
	reads, writes := 0, 0
	var readBytes, minSize, maxSize int64
	minSize = 1 << 62
	for _, r := range reqs {
		if r.Write {
			writes++
			continue
		}
		reads++
		readBytes += r.Size
		if r.Size < minSize {
			minSize = r.Size
		}
		if r.Size > maxSize {
			maxSize = r.Size
		}
		if r.Offset < 0 || r.Offset+r.Size > FigureDatasetBytes {
			t.Fatalf("request out of dataset bounds: %+v", r)
		}
	}
	if reads != wantReads || writes != wantWrites {
		t.Fatalf("reads/writes = %d/%d, want %d/%d", reads, writes, wantReads, wantWrites)
	}
	// Request-size distribution per the paper: 12 KB - 516 KB, avg
	// ~330 KB. Our striped geometry gives 32 KB - 512 KB.
	avg := readBytes / int64(reads)
	if avg < 250<<10 || avg > 400<<10 {
		t.Fatalf("average read size = %d KB, want ~330 KB", avg>>10)
	}
	if maxSize > 520<<10 || minSize < 8<<10 {
		t.Fatalf("request size range [%d, %d] KB outside the paper's", minSize>>10, maxSize>>10)
	}
	// Reads dominate (§5.2.1: "most of its I/O requests are reads").
	if reads < 10*writes {
		t.Fatalf("reads (%d) do not dominate writes (%d)", reads, writes)
	}
	// Compute-bound: the calibrated compute is hours.
	if compute.Hours() < 2 || compute.Hours() > 8 {
		t.Fatalf("calibrated compute = %v, want a few hours", compute)
	}
}

func TestFigureSpecSpreadsCompute(t *testing.T) {
	spec := FigureSpec()
	if spec.Iterations != 1 {
		t.Fatalf("lu runs once, got %d iterations", spec.Iterations)
	}
	if spec.Compute <= 0 {
		t.Fatal("no per-request compute time")
	}
	n := len(spec.Pattern.(workload.TracePattern).Trace)
	_, compute := FigureTrace()
	total := spec.Compute * time.Duration(n)
	if ratio := float64(total) / float64(compute); ratio < 0.95 || ratio > 1.05 {
		t.Fatalf("spread compute %v != calibrated %v", total, compute)
	}
}

func BenchmarkFactor64(b *testing.B) {
	b.ReportAllocs()
	m := RandomDiagDominant(64, 3)
	for i := 0; i < b.N; i++ {
		st, err := FromMatrix(m, 8)
		if err != nil {
			b.Fatal(err)
		}
		if err := Factor(st); err != nil {
			b.Fatal(err)
		}
	}
}
