package lu

import (
	"testing"
	"testing/quick"
)

func TestFactorParallelMatchesSequentialBitwise(t *testing.T) {
	const n, bcols = 64, 16
	m := RandomDiagDominant(n, 11)
	seqStore, err := FromMatrix(m, bcols)
	if err != nil {
		t.Fatal(err)
	}
	if err := Factor(seqStore); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		parStore, err := FromMatrix(m, bcols)
		if err != nil {
			t.Fatal(err)
		}
		if err := FactorParallel(parStore, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		a, b := seqStore.ToMatrix(), parStore.ToMatrix()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("workers=%d: element %d differs: %g vs %g (must be bitwise identical)",
					workers, i, a.Data[i], b.Data[i])
			}
		}
	}
}

func TestFactorParallelDefaultAndDegenerate(t *testing.T) {
	m := RandomDiagDominant(32, 3)
	st, err := FromMatrix(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := FactorParallel(st, 0); err != nil { // 0 -> GOMAXPROCS
		t.Fatal(err)
	}
	if diff := MaxAbsDiff(Reconstruct(st.ToMatrix()), m); diff > 1e-8 {
		t.Fatalf("||LU - A|| = %g", diff)
	}
	// workers=1 falls back to Factor.
	st2, _ := FromMatrix(m, 8)
	if err := FactorParallel(st2, 1); err != nil {
		t.Fatal(err)
	}
	bad := NewMemStore(16, 4, 3)
	if err := FactorParallel(bad, 4); err == nil {
		t.Fatal("inconsistent geometry accepted")
	}
}

// Property: parallel factorization reconstructs A for arbitrary seeds
// and worker counts.
func TestPropertyFactorParallelCorrect(t *testing.T) {
	f := func(seed int64, w uint8) bool {
		m := RandomDiagDominant(32, seed)
		st, err := FromMatrix(m, 8)
		if err != nil {
			return false
		}
		if err := FactorParallel(st, int(w%6)+2); err != nil {
			return false
		}
		return MaxAbsDiff(Reconstruct(st.ToMatrix()), m) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFactorSequential256(b *testing.B) {
	b.ReportAllocs()
	m := RandomDiagDominant(256, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := FromMatrix(m, 32)
		if err != nil {
			b.Fatal(err)
		}
		if err := Factor(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFactorParallel256(b *testing.B) {
	b.ReportAllocs()
	m := RandomDiagDominant(256, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := FromMatrix(m, 32)
		if err != nil {
			b.Fatal(err)
		}
		if err := FactorParallel(st, 0); err != nil {
			b.Fatal(err)
		}
	}
}
