// Package transport abstracts the datagram substrate Dodo runs over. The
// paper's implementation can use either kernel UDP/IP or U-Net through the
// usocket library (§4); this package defines the common interface plus a
// real UDP implementation and an in-memory network with deterministic
// fault injection for tests.
//
// The interface is deliberately UDP-shaped — unreliable, unordered,
// message-oriented with a per-transport MTU — because the bulk transfer
// protocol (package bulk) supplies reliability above it exactly as §4.4
// describes.
package transport

import (
	"errors"
	"time"
)

// Errors shared by all implementations.
var (
	// ErrTimeout reports that no datagram arrived within the deadline.
	ErrTimeout = errors.New("transport: receive timed out")
	// ErrClosed reports use of a closed transport.
	ErrClosed = errors.New("transport: closed")
	// ErrTooLarge reports a send exceeding the transport MTU.
	ErrTooLarge = errors.New("transport: datagram exceeds MTU")
	// ErrNoRoute reports a send to an unknown address.
	ErrNoRoute = errors.New("transport: no route to host")
)

// Transport is one endpoint of a datagram network. Implementations must
// allow Send and Recv to be called concurrently with each other and with
// Close; Recv itself is called from a single receive loop.
type Transport interface {
	// LocalAddr returns this endpoint's address in the network's
	// addressing scheme ("ip:port" for UDP, node names for the
	// in-memory network, MAC strings for usocket).
	LocalAddr() string
	// MTU returns the largest datagram this transport can carry.
	// Kernel UDP fragments up to ~64 KB; U-Net carries single Ethernet
	// frames (§4.4: "≈1500 bytes for U-Net and 64 KB for UDP").
	MTU() int
	// Send transmits one datagram. Delivery is not guaranteed.
	Send(to string, data []byte) error
	// Recv blocks until a datagram arrives or timeout elapses
	// (timeout <= 0 means wait forever). The returned slice is owned
	// by the caller.
	Recv(timeout time.Duration) (data []byte, from string, err error)
	// Close releases the endpoint; blocked Recv calls return ErrClosed.
	Close() error
}

// VecSender is an optional extension: a transport that can transmit a
// datagram supplied as two segments (a protocol prefix and a payload)
// without the caller first gathering them into one contiguous frame.
// The bulk data plane uses it to send BulkData packets whose payload is
// a slice of the transfer buffer — the transport performs the single
// gather copy it needs (into the receiver-owned frame for in-memory and
// usocket networks, or into a pooled frame handed to the kernel for
// UDP), so no intermediate per-packet frame is built by the sender.
//
// SendVec must not retain prefix or payload after it returns, and must
// never write to them: both may alias caller-owned memory (the payload
// typically aliases a live transfer buffer).
type VecSender interface {
	// SendVec transmits the concatenation of prefix and payload as one
	// datagram, subject to the same MTU bound as Send.
	SendVec(to string, prefix, payload []byte) error
}
