package transport

import (
	"errors"
	"fmt"
	"net"
	"time"

	"dodo/internal/locks"
	"dodo/internal/wire"
)

// UDPMTU is the largest datagram the UDP transport accepts: the 64 KB
// IPv4 datagram limit minus generous header room, matching the paper's
// "64 KB for UDP" packetization bound.
const UDPMTU = 63 << 10

// UDP is a Transport over a kernel UDP socket.
type UDP struct {
	// dodo:unguarded — immutable after construction; *net.UDPConn is
	// safe for concurrent use
	conn *net.UDPConn

	mu locks.Mutex
	// dodo:guardedby mu
	routes map[string]*net.UDPAddr
	// dodo:guardedby mu
	closed bool
}

var (
	_ Transport = (*UDP)(nil)
	_ VecSender = (*UDP)(nil)
)

// ListenUDP opens a UDP transport bound to addr (e.g. "127.0.0.1:0").
func ListenUDP(addr string) (*UDP, error) {
	laddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolving %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listening on %q: %w", addr, err)
	}
	u := &UDP{conn: conn, routes: make(map[string]*net.UDPAddr)}
	u.mu.SetRank(locks.RankUDP)
	return u, nil
}

// LocalAddr returns the bound "ip:port".
func (u *UDP) LocalAddr() string { return u.conn.LocalAddr().String() }

// MTU returns the UDP datagram bound.
func (u *UDP) MTU() int { return UDPMTU }

// Send transmits one datagram to the "ip:port" address to.
func (u *UDP) Send(to string, data []byte) error {
	if len(data) > UDPMTU {
		return ErrTooLarge
	}
	raddr, err := u.route(to)
	if err != nil {
		return err
	}
	if _, err := u.conn.WriteToUDP(data, raddr); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: udp send to %s: %w", to, err)
	}
	return nil
}

// SendVec transmits prefix+payload as one datagram. The kernel needs a
// contiguous buffer, so the two segments are gathered into a pooled
// frame that is recycled as soon as the write returns — no per-packet
// heap allocation.
func (u *UDP) SendVec(to string, prefix, payload []byte) error {
	n := len(prefix) + len(payload)
	if n > UDPMTU {
		return ErrTooLarge
	}
	raddr, err := u.route(to)
	if err != nil {
		return err
	}
	frame := wire.GetFrame(n)
	defer wire.PutFrame(frame)
	copy(frame, prefix)
	copy(frame[len(prefix):], payload)
	if _, err := u.conn.WriteToUDP(frame, raddr); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return fmt.Errorf("transport: udp send to %s: %w", to, err)
	}
	return nil
}

func (u *UDP) route(to string) (*net.UDPAddr, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.closed {
		return nil, ErrClosed
	}
	if a, ok := u.routes[to]; ok {
		return a, nil
	}
	a, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return nil, fmt.Errorf("transport: %w: %q: %v", ErrNoRoute, to, err)
	}
	u.routes[to] = a
	return a, nil
}

// Recv blocks for one datagram.
func (u *UDP) Recv(timeout time.Duration) ([]byte, string, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if err := u.conn.SetReadDeadline(deadline); err != nil {
		// Setting a deadline on a closed socket must surface as
		// ErrClosed, or receive loops spin forever.
		if errors.Is(err, net.ErrClosed) {
			return nil, "", ErrClosed
		}
		return nil, "", fmt.Errorf("transport: udp deadline: %w", err)
	}
	buf := make([]byte, UDPMTU+1)
	n, raddr, err := u.conn.ReadFromUDP(buf)
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			return nil, "", ErrTimeout
		}
		if errors.Is(err, net.ErrClosed) {
			return nil, "", ErrClosed
		}
		return nil, "", fmt.Errorf("transport: udp recv: %w", err)
	}
	return buf[:n:n], raddr.String(), nil
}

// Close shuts the socket down.
func (u *UDP) Close() error {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	return u.conn.Close()
}
