package transport

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"dodo/internal/simnet"
)

// transportPair builds two connected endpoints of the named kind.
func transportPair(t *testing.T, kind string) (a, b Transport) {
	t.Helper()
	switch kind {
	case "udp":
		ua, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenUDP: %v", err)
		}
		ub, err := ListenUDP("127.0.0.1:0")
		if err != nil {
			t.Fatalf("ListenUDP: %v", err)
		}
		t.Cleanup(func() { ua.Close(); ub.Close() })
		return ua, ub
	case "mem":
		n := NewNetwork()
		ea, eb := n.Host("a"), n.Host("b")
		t.Cleanup(func() { ea.Close(); eb.Close() })
		return ea, eb
	}
	t.Fatalf("unknown transport kind %q", kind)
	return nil, nil
}

func TestSendRecvBothKinds(t *testing.T) {
	for _, kind := range []string{"udp", "mem"} {
		t.Run(kind, func(t *testing.T) {
			a, b := transportPair(t, kind)
			msg := []byte("harvest the idle memory")
			if err := a.Send(b.LocalAddr(), msg); err != nil {
				t.Fatalf("Send: %v", err)
			}
			data, from, err := b.Recv(2 * time.Second)
			if err != nil {
				t.Fatalf("Recv: %v", err)
			}
			if !bytes.Equal(data, msg) {
				t.Fatalf("Recv data = %q, want %q", data, msg)
			}
			if from != a.LocalAddr() {
				t.Fatalf("Recv from = %q, want %q", from, a.LocalAddr())
			}
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	for _, kind := range []string{"udp", "mem"} {
		t.Run(kind, func(t *testing.T) {
			_, b := transportPair(t, kind)
			start := time.Now()
			_, _, err := b.Recv(50 * time.Millisecond)
			if !errors.Is(err, ErrTimeout) {
				t.Fatalf("Recv = %v, want ErrTimeout", err)
			}
			if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
				t.Fatalf("Recv returned after %v, want >= ~50ms", elapsed)
			}
		})
	}
}

func TestSendTooLarge(t *testing.T) {
	for _, kind := range []string{"udp", "mem"} {
		t.Run(kind, func(t *testing.T) {
			a, b := transportPair(t, kind)
			err := a.Send(b.LocalAddr(), make([]byte, UDPMTU+1))
			if !errors.Is(err, ErrTooLarge) {
				t.Fatalf("Send oversize = %v, want ErrTooLarge", err)
			}
		})
	}
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	for _, kind := range []string{"udp", "mem"} {
		t.Run(kind, func(t *testing.T) {
			_, b := transportPair(t, kind)
			done := make(chan error, 1)
			go func() {
				_, _, err := b.Recv(0)
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			b.Close()
			select {
			case err := <-done:
				if !errors.Is(err, ErrClosed) {
					t.Fatalf("Recv after close = %v, want ErrClosed", err)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("Recv did not return after Close")
			}
		})
	}
}

func TestSendAfterClose(t *testing.T) {
	for _, kind := range []string{"udp", "mem"} {
		t.Run(kind, func(t *testing.T) {
			a, b := transportPair(t, kind)
			a.Close()
			if err := a.Send(b.LocalAddr(), []byte("x")); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestPerSenderOrderPreservedMem(t *testing.T) {
	n := NewNetwork()
	a, b := n.Host("a"), n.Host("b")
	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatalf("Send %d: %v", i, err)
		}
	}
	for i := 0; i < count; i++ {
		data, _, err := b.Recv(time.Second)
		if err != nil {
			t.Fatalf("Recv %d: %v", i, err)
		}
		if data[0] != byte(i) {
			t.Fatalf("frame %d carried %d, want in-order delivery", i, data[0])
		}
	}
}

func TestMemSendToUnknownHost(t *testing.T) {
	n := NewNetwork()
	a := n.Host("a")
	if err := a.Send("ghost", []byte("x")); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Send to unknown = %v, want ErrNoRoute", err)
	}
}

func TestMemPartitionDropsSilently(t *testing.T) {
	n := NewNetwork()
	a, b := n.Host("a"), n.Host("b")
	n.Partition("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("Send to partitioned host = %v, want nil (silent drop)", err)
	}
	if _, _, err := b.Recv(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv on partitioned host = %v, want ErrTimeout", err)
	}
	n.Heal("b")
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatalf("Send after heal: %v", err)
	}
	data, _, err := b.Recv(time.Second)
	if err != nil || data[0] != 'y' {
		t.Fatalf("Recv after heal = %q, %v", data, err)
	}
}

func TestMemLossInjection(t *testing.T) {
	n := NewNetwork(WithFaults(simnet.Faults{LossRate: 1.0, Seed: 1}))
	a, b := n.Host("a"), n.Host("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, _, err := b.Recv(30 * time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv with 100%% loss = %v, want ErrTimeout", err)
	}
}

func TestMemDuplicateInjection(t *testing.T) {
	n := NewNetwork(WithFaults(simnet.Faults{DupRate: 1.0, Seed: 1}))
	a, b := n.Host("a"), n.Host("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := b.Recv(time.Second); err != nil {
			t.Fatalf("Recv copy %d: %v", i, err)
		}
	}
}

func TestMemCustomMTU(t *testing.T) {
	n := NewNetwork(WithMTU(1500))
	a := n.Host("a")
	n.Host("b")
	if got := a.MTU(); got != 1500 {
		t.Fatalf("MTU() = %d, want 1500", got)
	}
	if err := a.Send("b", make([]byte, 1501)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("Send over custom MTU = %v, want ErrTooLarge", err)
	}
}

func TestMemHostReusesOpenEndpoint(t *testing.T) {
	n := NewNetwork()
	a1 := n.Host("a")
	a2 := n.Host("a")
	if a1 != a2 {
		t.Fatal("Host returned a new endpoint for an open address")
	}
	a1.Close()
	a3 := n.Host("a")
	if a3 == a1 {
		t.Fatal("Host returned the closed endpoint instead of a fresh one")
	}
}

func TestUDPLocalAddrIsResolvable(t *testing.T) {
	u, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer u.Close()
	if u.LocalAddr() == "" {
		t.Fatal("LocalAddr is empty")
	}
	if u.MTU() != UDPMTU {
		t.Fatalf("MTU = %d, want %d", u.MTU(), UDPMTU)
	}
}

func TestUDPSendToMalformedAddr(t *testing.T) {
	u, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenUDP: %v", err)
	}
	defer u.Close()
	if err := u.Send("not-an-address", []byte("x")); err == nil {
		t.Fatal("Send to malformed address succeeded, want error")
	}
}

func TestConcurrentSendersMem(t *testing.T) {
	n := NewNetwork()
	dst := n.Host("dst")
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			src := n.Host(fmt.Sprintf("src%d", s))
			for i := 0; i < per; i++ {
				if err := src.Send("dst", []byte{byte(s), byte(i)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	seen := 0
	for {
		_, _, err := dst.Recv(100 * time.Millisecond)
		if errors.Is(err, ErrTimeout) {
			break
		}
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		seen++
	}
	if seen != senders*per {
		t.Fatalf("received %d frames, want %d", seen, senders*per)
	}
}

// Property: any payload within MTU survives a mem round trip unmodified.
func TestPropertyMemPayloadIntegrity(t *testing.T) {
	n := NewNetwork()
	a, b := n.Host("a"), n.Host("b")
	f := func(payload []byte) bool {
		if len(payload) > a.MTU() {
			payload = payload[:a.MTU()]
		}
		if err := a.Send("b", payload); err != nil {
			return false
		}
		data, from, err := b.Recv(time.Second)
		return err == nil && from == "a" && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMemSendRecv(b *testing.B) {
	n := NewNetwork()
	src, dst := n.Host("a"), n.Host("b")
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Send("b", payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := dst.Recv(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUDPSendRecvLoopback(b *testing.B) {
	src, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	dst, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer dst.Close()
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := src.Send(dst.LocalAddr(), payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := dst.Recv(time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMemCloseConcurrentWithSend pins the all-atomic discipline on
// MemEndpoint.closed that the guarded-by pass verifies (dodo:atomic):
// Send's lock-free fast path and Close's Store race freely, and under
// -race this would fail if closed regressed to a plain bool. Either
// outcome per Send is legal — delivered before the close, or ErrClosed
// after — but never a torn read.
func TestMemCloseConcurrentWithSend(t *testing.T) {
	n := NewNetwork()
	src, dst := n.Host("src"), n.Host("dst")
	defer dst.Close()
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 200; i++ {
			if err := src.Send("dst", []byte("ping")); err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("Send: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		src.Close()
	}()
	close(start)
	wg.Wait()
	if err := src.Send("dst", []byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after Close: got %v, want ErrClosed", err)
	}
}
