package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dodo/internal/locks"
	"dodo/internal/sim"
	"dodo/internal/simnet"
)

// Network is an in-memory datagram network for tests and single-process
// cluster harnesses. Endpoints are named, delivery preserves per-sender
// order unless reordering is injected, and a simnet.Injector can drop,
// duplicate or reorder frames deterministically.
//
// Delivery is synchronous: Send appends to the destination queue before
// returning, so tests need no sleeps.
type Network struct {
	mu locks.Mutex
	// dodo:guardedby mu
	hosts map[string]*MemEndpoint
	// dodo:unguarded — set by options in NewNetwork, immutable after
	injector *simnet.Injector
	// dodo:guardedby mu
	perHost map[string]*simnet.Injector
	// dodo:guardedby mu
	partitioned map[string]bool
	// dodo:unguarded — set by options in NewNetwork, immutable after
	mtu int
}

// NetworkOption configures a Network.
type NetworkOption func(*Network)

// WithFaults installs deterministic fault injection on every frame.
func WithFaults(f simnet.Faults) NetworkOption {
	return func(n *Network) { n.injector = f.NewInjector() }
}

// WithMTU sets the network MTU (default UDPMTU).
func WithMTU(mtu int) NetworkOption {
	return func(n *Network) { n.mtu = mtu }
}

// NewNetwork creates an empty in-memory network.
func NewNetwork(opts ...NetworkOption) *Network {
	n := &Network{
		hosts:       make(map[string]*MemEndpoint),
		perHost:     make(map[string]*simnet.Injector),
		partitioned: make(map[string]bool),
		mtu:         UDPMTU,
	}
	n.mu.SetRank(locks.RankNetwork)
	for _, o := range opts {
		o(n)
	}
	return n
}

// Host creates (or returns) the endpoint with the given address.
func (n *Network) Host(addr string) *MemEndpoint {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.hosts[addr]; ok && !ep.closed.Load() {
		return ep
	}
	ep := &MemEndpoint{net: n, addr: addr}
	ep.mu.SetRank(locks.RankNetEndpoint)
	ep.cond = sync.NewCond(&ep.mu)
	n.hosts[addr] = ep
	return ep
}

// Partition isolates addr: frames to or from it vanish until Heal.
// It models the crashed/reclaimed hosts of §3.1.
func (n *Network) Partition(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitioned[addr] = true
}

// Heal reconnects a partitioned address.
func (n *Network) Heal(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, addr)
}

// SetEndpointFaults degrades every link touching addr: each frame sent
// to or from it passes through a dedicated injector seeded from f. It
// models a flaky NIC or switch port, and may be installed and removed
// at runtime (unlike the construction-time WithFaults). The sender-side
// injector wins when both ends are degraded, keeping frame decisions
// attributable to one deterministic stream.
func (n *Network) SetEndpointFaults(addr string, f simnet.Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.perHost[addr] = f.NewInjector()
}

// ClearEndpointFaults heals addr's links.
func (n *Network) ClearEndpointFaults(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.perHost, addr)
}

// deliver routes one datagram, given as up to two segments (prefix may
// be nil): each recipient copy is gathered into one fresh frame, so a
// scatter-gather SendVec costs exactly the same single copy as a plain
// Send.
func (n *Network) deliver(from, to string, prefix, data []byte) error {
	n.mu.Lock()
	if n.partitioned[from] || n.partitioned[to] {
		n.mu.Unlock()
		return nil // silently dropped, like a dead wire
	}
	dst, ok := n.hosts[to]
	if !ok || dst.closed.Load() {
		n.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoRoute, to)
	}
	var decision simnet.Decision
	switch {
	case n.perHost[from] != nil:
		decision = n.perHost[from].Next()
	case n.perHost[to] != nil:
		decision = n.perHost[to].Next()
	case n.injector != nil:
		decision = n.injector.Next()
	}
	n.mu.Unlock()

	if decision.Drop {
		return nil
	}
	copies := 1
	if decision.Duplicate {
		copies = 2
	}
	for i := 0; i < copies; i++ {
		frame := make([]byte, 0, len(prefix)+len(data))
		frame = append(append(frame, prefix...), data...)
		if decision.ExtraDelay > 0 {
			// Reordering: defer this frame so later sends overtake it.
			time.AfterFunc(decision.ExtraDelay, func() { dst.enqueue(from, frame) })
			continue
		}
		dst.enqueue(from, frame)
	}
	return nil
}

// MemEndpoint is one endpoint on a Network.
type MemEndpoint struct {
	// dodo:unguarded — immutable after construction
	net *Network
	// dodo:unguarded — immutable after construction
	addr string

	mu locks.Mutex
	// dodo:unguarded — set at construction; Cond is internally synchronized
	cond *sync.Cond
	// dodo:guardedby mu
	queue []memFrame
	// closed is atomic so Send's fast path can refuse without taking
	// the endpoint lock; Recv re-checks it under mu via the cond loop.
	// dodo:atomic
	closed atomic.Bool
}

type memFrame struct {
	from string
	data []byte
}

var (
	_ Transport = (*MemEndpoint)(nil)
	_ VecSender = (*MemEndpoint)(nil)
)

// LocalAddr returns the endpoint name.
func (e *MemEndpoint) LocalAddr() string { return e.addr }

// MTU returns the network MTU.
func (e *MemEndpoint) MTU() int { return e.net.mtu }

// Send delivers one datagram through the network fabric.
func (e *MemEndpoint) Send(to string, data []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(data) > e.net.mtu {
		return ErrTooLarge
	}
	return e.net.deliver(e.addr, to, nil, data)
}

// SendVec delivers prefix+payload as one datagram; the fabric gathers
// the two segments into each recipient's fresh frame directly.
func (e *MemEndpoint) SendVec(to string, prefix, payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(prefix)+len(payload) > e.net.mtu {
		return ErrTooLarge
	}
	return e.net.deliver(e.addr, to, prefix, payload)
}

// enqueue takes ownership of data: deliver hands it a fresh copy per
// recipient, never a caller-owned buffer.
func (e *MemEndpoint) enqueue(from string, data []byte) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed.Load() {
		return
	}
	//vet:ignore buffer-ownership — ownership transferred: deliver copies the frame before enqueueing
	e.queue = append(e.queue, memFrame{from: from, data: data})
	e.cond.Signal()
}

// Recv blocks until a frame arrives, the timeout passes, or Close.
func (e *MemEndpoint) Recv(timeout time.Duration) ([]byte, string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !sim.CondWaitTimeout(e.cond, timeout, func() bool {
		return len(e.queue) > 0 || e.closed.Load()
	}) {
		return nil, "", ErrTimeout
	}
	if len(e.queue) == 0 {
		return nil, "", ErrClosed
	}
	f := e.queue[0]
	e.queue = e.queue[1:]
	return f.data, f.from, nil
}

// Close removes the endpoint from the network.
func (e *MemEndpoint) Close() error {
	e.mu.Lock()
	e.closed.Store(true)
	e.queue = nil
	e.cond.Broadcast()
	e.mu.Unlock()
	return nil
}
