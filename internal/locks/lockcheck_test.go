//go:build lockcheck

package locks

import (
	"strings"
	"testing"
)

// The tests in this file run only under `-tags lockcheck` and pin the
// enforcement behavior itself: inversions panic, undeclared ranks
// panic, and the held-stack bookkeeping survives non-LIFO unlocks.
// They are what makes the tag meaningful — if the hooks were silently
// compiled out, these tests would fail.

func mustPanic(t *testing.T, wantSubstr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", wantSubstr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, wantSubstr) {
			t.Fatalf("panic %v does not contain %q", r, wantSubstr)
		}
	}()
	f()
}

func TestLockcheckEnabled(t *testing.T) {
	if !CheckEnabled {
		t.Fatal("lockcheck build must report CheckEnabled")
	}
}

func TestRankInversionPanics(t *testing.T) {
	var outer, inner Mutex
	outer.SetRank(RankManager)
	inner.SetRank(RankBulkEndpoint)
	inner.Lock()
	defer inner.Unlock()
	mustPanic(t, "rank inversion", func() { outer.Lock() })
}

func TestEqualRankPanics(t *testing.T) {
	var a, b Mutex
	a.SetRank(RankIMD)
	b.SetRank(RankIMD)
	a.Lock()
	defer a.Unlock()
	mustPanic(t, "rank inversion", func() { b.Lock() })
}

func TestUndeclaredRankPanics(t *testing.T) {
	var m Mutex
	mustPanic(t, "no declared rank", func() { m.Lock() })
}

func TestHeldStackTracksNonLIFO(t *testing.T) {
	var a, b, c Mutex
	a.SetRank(RankCluster)
	b.SetRank(RankMonitor)
	c.SetRank(RankIMD)
	a.Lock()
	b.Lock()
	a.Unlock() // non-LIFO: outer released first
	c.Lock()
	got := heldRanks()
	if len(got) != 2 || got[0] != RankMonitor || got[1] != RankIMD {
		t.Fatalf("held ranks = %v, want [monitor imd]", got)
	}
	c.Unlock()
	b.Unlock()
	if got := heldRanks(); len(got) != 0 {
		t.Fatalf("held ranks after full release = %v, want empty", got)
	}
}

// TestInversionAcrossGoroutinesIsIndependent proves the held-stack is
// per-goroutine: one goroutine holding a high rank must not poison
// another goroutine's acquisitions.
func TestInversionAcrossGoroutinesIsIndependent(t *testing.T) {
	var hi, lo Mutex
	hi.SetRank(RankUDP)
	lo.SetRank(RankCluster)
	hi.Lock()
	defer hi.Unlock()
	done := make(chan struct{})
	go func() {
		defer close(done)
		lo.Lock() // fresh goroutine holds nothing; must succeed
		lo.Unlock()
	}()
	<-done
}
