// Package locks provides the rank-ordered mutex every Dodo subsystem
// locks through, and the single declared lock hierarchy for the whole
// repository (see DESIGN.md §8).
//
// A goroutine may only acquire a mutex whose rank is strictly greater
// than every rank it already holds. Because the declared order is a
// total order over all lock classes, any schedule that obeys it is
// deadlock-free by construction: a cycle in the waits-for graph would
// need some goroutine to acquire downward.
//
// Enforcement is split between build modes:
//
//   - default build: SetRank stores the rank and Lock/Unlock delegate
//     straight to sync.Mutex — no bookkeeping, no atomics, no extra
//     allocation. Production pays nothing for the hierarchy.
//   - `-tags lockcheck`: every Lock records the acquisition in a
//     per-goroutine held-stack and panics on a rank inversion or on a
//     mutex whose rank was never declared. verify.sh runs the full
//     test suite in this mode, so the runtime cross-checks whatever
//     the static lock-order analyzer (internal/vet) could not see —
//     interface-mediated calls, callbacks, reflection.
//
// The static analyzer and this runtime deliberately overlap: the
// analyzer proves ordering over all paths it can resolve without
// running anything; lockcheck catches the paths it cannot.
package locks

import "sync"

// Rank is a lock class's position in the declared hierarchy. Locks must
// be acquired in strictly increasing rank order; two locks of the same
// rank may never be held together.
type Rank uint8

// The declared hierarchy, outermost first. A holder of RankCluster may
// acquire anything below it; a holder of RankUDP may acquire nothing.
// The ordering mirrors the request path: harness (cluster, faults,
// monitor) over daemons (manager, imd) over the client stack (region
// cache over core) over messaging (bulk) over the network substrates
// (usocket, in-memory fabric, UDP).
//
// internal/sim's clock mutex is intentionally *not* in the hierarchy:
// timers are armed from under almost every lock here and their
// callbacks re-enter the stack from the outside, so the clock sits
// beneath (and invisible to) the ranked world.
const (
	rankUnset Rank = iota

	// RankCluster: cluster.Cluster.mu — deployment directory.
	RankCluster
	// RankWorkstation: cluster.Workstation.mu — per-host rmd/imd slot.
	RankWorkstation
	// RankFaults: faults.Scheduler.mu — fault schedule cursor.
	RankFaults
	// RankMonitor: monitor.Monitor.mu — idleness state machine.
	RankMonitor
	// RankManager: manager.Manager.mu — IWD/RD directories.
	RankManager
	// RankIMD: imd.Daemon.mu — pool and write-seq gates.
	RankIMD
	// RankRegionCache: region.Cache.mu — client-side region cache.
	RankRegionCache
	// RankCoreClient: core.Client.mu — descriptor table.
	RankCoreClient
	// RankBacking: core.MemBacking.mu — simulated backing store.
	RankBacking
	// RankBulkEndpoint: bulk.Endpoint.mu — call/transfer correlation.
	RankBulkEndpoint
	// RankBulkTransfer: bulk.rxTransfer.mu — one receive-side transfer.
	RankBulkTransfer
	// RankSegment: usocket.Segment.mu — emulated Ethernet wire.
	RankSegment
	// RankSocket: usocket.Socket.mu — one U-Net endpoint.
	RankSocket
	// RankNetwork: transport.Network.mu — in-memory fabric directory.
	RankNetwork
	// RankNetEndpoint: transport.MemEndpoint.mu — one fabric endpoint.
	RankNetEndpoint
	// RankUDP: transport.UDP.mu — kernel-socket route cache.
	RankUDP

	rankSentinel // keep last
)

var rankNames = map[Rank]string{
	rankUnset:        "unset",
	RankCluster:      "cluster",
	RankWorkstation:  "workstation",
	RankFaults:       "faults",
	RankMonitor:      "monitor",
	RankManager:      "manager",
	RankIMD:          "imd",
	RankRegionCache:  "region-cache",
	RankCoreClient:   "core-client",
	RankBacking:      "backing",
	RankBulkEndpoint: "bulk-endpoint",
	RankBulkTransfer: "bulk-transfer",
	RankSegment:      "usocket-segment",
	RankSocket:       "usocket-socket",
	RankNetwork:      "net-fabric",
	RankNetEndpoint:  "net-endpoint",
	RankUDP:          "udp",
}

func (r Rank) String() string {
	if s, ok := rankNames[r]; ok {
		return s
	}
	return "rank?"
}

// Mutex is a sync.Mutex carrying its declared rank. The zero value is
// usable as a mutex but has no rank; under `-tags lockcheck` locking it
// panics, which is what makes every forgotten SetRank a test failure
// rather than a silent hole in the hierarchy. Mutex implements
// sync.Locker, so sync.NewCond(&m) works; Cond.Wait keeps the
// held-stack accurate because its internal Unlock/Lock go through the
// wrapper.
type Mutex struct {
	rank Rank
	mu   sync.Mutex
}

// SetRank declares the mutex's place in the hierarchy. Call it once
// from the owning struct's constructor, before the first Lock.
func (m *Mutex) SetRank(r Rank) { m.rank = r }

// Lock acquires the mutex, enforcing the rank order under lockcheck.
func (m *Mutex) Lock() {
	lockAcquire(m)
	m.mu.Lock()
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() {
	m.mu.Unlock()
	lockRelease(m)
}
