//go:build !lockcheck

package locks

// CheckEnabled reports whether this build enforces the lock hierarchy
// at runtime. Tests use it to assert the `lockcheck` tag is doing work.
const CheckEnabled = false

// In the default build the hooks compile to nothing: Lock/Unlock inline
// down to the underlying sync.Mutex operations.

func lockAcquire(*Mutex) {}

func lockRelease(*Mutex) {}
