//go:build lockcheck

package locks

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
)

// CheckEnabled reports whether this build enforces the lock hierarchy
// at runtime.
const CheckEnabled = true

// The lockcheck runtime keeps one held-stack per goroutine, keyed by
// goroutine id. Go deliberately hides goroutine-local storage, so the
// id is parsed from the first line of runtime.Stack — slow, but this
// build exists only under `go test -tags lockcheck`.

type heldEntry struct {
	m    *Mutex
	rank Rank
}

var (
	heldMu sync.Mutex
	held   = make(map[int64][]heldEntry)
)

// goid returns the current goroutine's id.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// First line: "goroutine 123 [running]:".
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		return -1
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		return -1
	}
	return id
}

// lockAcquire validates m against the goroutine's held-stack and
// records the acquisition. It runs before the underlying sync.Mutex
// blocks, so an inversion panics instead of deadlocking.
func lockAcquire(m *Mutex) {
	if m.rank == rankUnset || m.rank >= rankSentinel {
		panic("locks: Lock on a mutex with no declared rank (constructor must call SetRank; see DESIGN.md §8)")
	}
	g := goid()
	heldMu.Lock()
	for _, e := range held[g] {
		if e.rank >= m.rank {
			holding := e.rank
			heldMu.Unlock()
			panic(fmt.Sprintf(
				"locks: rank inversion: acquiring %q while holding %q; the declared hierarchy requires strictly increasing ranks (DESIGN.md §8)",
				m.rank, holding))
		}
	}
	held[g] = append(held[g], heldEntry{m: m, rank: m.rank})
	heldMu.Unlock()
}

// lockRelease drops m from the goroutine's held-stack. Unlock order
// need not be LIFO (hand-over-hand and early-unlock patterns are
// legal), so the stack is searched from the top.
func lockRelease(m *Mutex) {
	g := goid()
	heldMu.Lock()
	stack := held[g]
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].m == m {
			stack = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	if len(stack) == 0 {
		delete(held, g)
	} else {
		held[g] = stack
	}
	heldMu.Unlock()
}

// heldRanks reports the ranks currently held by the calling goroutine,
// outermost first. Exposed for the lockcheck tests.
func heldRanks() []Rank {
	g := goid()
	heldMu.Lock()
	defer heldMu.Unlock()
	var rs []Rank
	for _, e := range held[g] {
		rs = append(rs, e.rank)
	}
	return rs
}
