package locks

import (
	"sync"
	"testing"
)

// TestHierarchyIsTotalOrder pins the declared ranks as a dense total
// order: every named rank is distinct, between the sentinels, and the
// outermost-to-innermost reading order of the const block matches the
// numeric order the runtime compares.
func TestHierarchyIsTotalOrder(t *testing.T) {
	ordered := []Rank{
		RankCluster, RankWorkstation, RankFaults, RankMonitor,
		RankManager, RankIMD, RankRegionCache, RankCoreClient,
		RankBacking, RankBulkEndpoint, RankBulkTransfer,
		RankSegment, RankSocket, RankNetwork, RankNetEndpoint, RankUDP,
	}
	if len(ordered) != int(rankSentinel)-1 {
		t.Fatalf("hierarchy lists %d ranks, const block declares %d", len(ordered), int(rankSentinel)-1)
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1] >= ordered[i] {
			t.Errorf("rank %v (%d) not below %v (%d)", ordered[i-1], ordered[i-1], ordered[i], ordered[i])
		}
	}
	seen := make(map[string]Rank)
	for _, r := range ordered {
		name := r.String()
		if name == "rank?" || name == "unset" {
			t.Errorf("rank %d has no name", r)
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("ranks %d and %d share the name %q", prev, r, name)
		}
		seen[name] = r
	}
}

// TestMutexIsALocker proves the wrapper satisfies sync.Locker so
// sync.NewCond can be built over it (usocket and the in-memory
// transport both do).
func TestMutexIsALocker(t *testing.T) {
	var m Mutex
	m.SetRank(RankSocket)
	var _ sync.Locker = &m
	cond := sync.NewCond(&m)
	ready := false
	go func() {
		m.Lock()
		ready = true
		cond.Signal()
		m.Unlock()
	}()
	m.Lock()
	for !ready {
		cond.Wait()
	}
	m.Unlock()
}

// TestOrderedAcquisition exercises the happy path in both build modes:
// strictly increasing ranks must always be accepted.
func TestOrderedAcquisition(t *testing.T) {
	var outer, inner Mutex
	outer.SetRank(RankManager)
	inner.SetRank(RankBulkEndpoint)
	for i := 0; i < 3; i++ {
		outer.Lock()
		inner.Lock()
		inner.Unlock()
		outer.Unlock()
	}
}

// TestNonLIFOUnlock pins that hand-over-hand unlock order is legal:
// the held-stack must tolerate releasing the outer lock first.
func TestNonLIFOUnlock(t *testing.T) {
	var outer, inner Mutex
	outer.SetRank(RankCluster)
	inner.SetRank(RankWorkstation)
	outer.Lock()
	inner.Lock()
	outer.Unlock()
	inner.Unlock()
	// The goroutine must be back to a clean slate: re-acquiring the
	// outer rank would panic under lockcheck if the release leaked.
	outer.Lock()
	outer.Unlock()
}
