module dodo

go 1.22
