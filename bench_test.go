package dodo

// One benchmark per table and figure of the paper's evaluation, plus
// the ablation benches DESIGN.md calls out. Each bench drives the same
// experiment code as cmd/dodo-bench and reports its headline numbers as
// custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates the entire evaluation. Benches run at reduced Scale so
// the suite completes in minutes; cmd/dodo-bench -scale 1 reruns the
// paper-exact configuration (EXPERIMENTS.md records those results).

import (
	"fmt"
	"testing"
	"time"

	"dodo/internal/experiments"
	"dodo/internal/sim"
)

const benchScale = 0.125

// BenchmarkTable1 regenerates Table 1 (per-class memory breakdown).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(4, 3*24*time.Hour, int64(i)+1)
	}
	for _, r := range rows {
		b.ReportMetric(r.AvailKB.Mean/1024, "availMB-"+r.Class)
	}
}

// BenchmarkFigure1 regenerates Figure 1 (cluster availability series).
func BenchmarkFigure1(b *testing.B) {
	b.ReportAllocs()
	var res []experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure1(3*24*time.Hour, int64(i)+1)
	}
	for _, r := range res {
		b.ReportMetric(r.AvgAllMB, "allMB-"+r.Cluster)
		b.ReportMetric(r.AvgIdleMB, "idleMB-"+r.Cluster)
	}
}

// BenchmarkFigure2 regenerates Figure 2 (per-host availability).
func BenchmarkFigure2(b *testing.B) {
	b.ReportAllocs()
	var res []experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure2(3*24*time.Hour, int64(i)+1)
	}
	for _, r := range res {
		b.ReportMetric(r.MeanMB, "meanMB-"+r.Class)
	}
}

// BenchmarkFigure7 regenerates Figure 7 (lu and dmine speedups).
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure7(experiments.Figure7Config{Scale: benchScale, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, "speedup-"+r.App+"-"+r.Transport)
	}
}

// BenchmarkFigure8 regenerates Figure 8 (synthetic benchmark sweep).
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.Fig8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure8(experiments.Figure8Config{Scale: benchScale, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the 8 KB cells (the paper's panel A/C equivalents).
	for _, r := range rows {
		if r.ReqKB != 8 {
			continue
		}
		unit := "x-" + r.Pattern + "-" + r.Transport
		if r.DatasetMB > int(float64(1<<10)*benchScale) {
			unit += "-2G"
		}
		b.ReportMetric(r.Speedup, unit)
	}
}

// BenchmarkReclamation regenerates the §5.3.1 recruitment-policy result.
func BenchmarkReclamation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.ReclaimRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Reclamation(experiments.ReclaimConfig{
			Hosts: 12, Duration: 3 * 24 * time.Hour, Seed: int64(i) + 1,
		})
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.MeanDelay)/float64(time.Millisecond), "delayMs-"+r.Policy)
	}
}

// BenchmarkAllocatorAblation compares first-fit vs buddy under churn.
func BenchmarkAllocatorAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.AllocatorRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AllocatorAblation(64<<20, 20000, int64(i)+1)
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Failures), "failures-"+r.Allocator)
		b.ReportMetric(r.Fragmentation, "frag-"+r.Allocator)
	}
}

// BenchmarkPolicyAblation sweeps replacement policies per pattern.
func BenchmarkPolicyAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.PolicyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PolicyAblation(0.0625, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Pattern == "hotcold" {
			b.ReportMetric(r.Speedup, "x-hotcold-"+r.Policy)
		}
	}
}

// BenchmarkRefractionAblation measures what the refraction period saves.
func BenchmarkRefractionAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.RefractionRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RefractionAblation(0.0625, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "allocRPCs-off"
		if r.RefractionPeriod > time.Millisecond {
			name = "allocRPCs-on"
		}
		b.ReportMetric(float64(r.AllocAttempts), name)
	}
}

// BenchmarkPrefetchAblation sweeps the sequential-prefetch window over
// a scan workload; the speedup-per-window metrics track whether running
// ahead of the stream keeps paying off as the cache code evolves.
func BenchmarkPrefetchAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.PrefetchRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.PrefetchAblation(0.0625, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := "speedup-off"
		if r.Window > 0 {
			name = fmt.Sprintf("speedup-w%d", r.Window)
		}
		b.ReportMetric(r.Speedup, name)
	}
}

// BenchmarkHeadroomAblation sweeps the §3.1 harvest headroom.
func BenchmarkHeadroomAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.HeadroomRow
	for i := 0; i < b.N; i++ {
		rows = experiments.HeadroomAblation(8, 2*24*time.Hour, int64(i)+1)
	}
	for _, r := range rows {
		if r.HeadroomFraction == 0 || r.HeadroomFraction == 0.15 {
			b.ReportMetric(float64(r.MeanDelay)/float64(time.Millisecond),
				"delayMs-"+fmtPct(r.HeadroomFraction))
		}
	}
}

func fmtPct(f float64) string {
	if f == 0 {
		return "0pct"
	}
	return "15pct"
}

// BenchmarkNackAblation compares selective NACK vs full-window
// retransmission over a live lossy network.
func BenchmarkNackAblation(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.NackRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.NackAblation(sim.WallClock{}, 0.05, 4, 128<<10, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Retransmits), "retx-"+r.Mode)
	}
}

// BenchmarkTransportMicro tabulates UDP vs U-Net request round trips.
func BenchmarkTransportMicro(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.TransportRow
	for i := 0; i < b.N; i++ {
		rows = experiments.TransportMicro()
	}
	for _, r := range rows {
		if r.SizeBytes == 8<<10 || r.SizeBytes == 128<<10 {
			b.ReportMetric(float64(r.UDPTime)/float64(time.Millisecond), "udpMs")
			b.ReportMetric(float64(r.UNetTime)/float64(time.Millisecond), "unetMs")
		}
	}
}
