// dodo-imd is Dodo's idle memory daemon (imd, §4.2), run standalone on
// dedicated (Beowulf-style) nodes that are always recruitable. On
// desktop machines, dodo-rmd manages imd lifecycle instead.
//
// Usage:
//
//	dodo-imd -manager cmdhost:7000 [-listen 0.0.0.0:7001] [-pool 100M]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dodo"
	"dodo/internal/sim"
)

// parseSize parses "100M", "1G", "512K" or plain bytes.
func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	}
	n, err := strconv.ParseUint(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func main() {
	listen := flag.String("listen", "0.0.0.0:7001", "UDP address to serve regions on")
	managerAddr := flag.String("manager", "", "central manager address (required)")
	poolFlag := flag.String("pool", "100M", "memory pool size (the paper's imds used 100 MB)")
	epoch := flag.Uint64("epoch", uint64(sim.WallClock{}.Now().Unix()), "epoch stamp for this incarnation")
	status := flag.Duration("status", time.Second, "availability report interval")
	verbose := flag.Bool("verbose", false, "log every operation")
	flag.Parse()

	if *managerAddr == "" {
		log.Fatal("dodo-imd: -manager is required")
	}
	pool, err := parseSize(*poolFlag)
	if err != nil {
		log.Fatalf("dodo-imd: %v", err)
	}
	cfg := dodo.IMDConfig{
		ManagerAddr:    *managerAddr,
		PoolSize:       pool,
		Epoch:          *epoch,
		StatusInterval: *status,
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	d, err := dodo.ListenIMD(*listen, cfg)
	if err != nil {
		log.Fatalf("dodo-imd: %v", err)
	}
	log.Printf("dodo-imd: serving %d MB pool on %s (manager %s, epoch %d)",
		pool>>20, d.Addr(), *managerAddr, *epoch)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Printf("dodo-imd: %v, draining", sig)
	d.Drain() // complete ongoing transfers, tell the manager, exit
}
