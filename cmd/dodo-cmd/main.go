// dodo-cmd is Dodo's central manager daemon (cmd, §4.3): it tracks idle
// workstations, keeps the region directory, and serves alloc/free/
// checkAlloc requests from application runtimes.
//
// Usage:
//
//	dodo-cmd -listen 0.0.0.0:7000 [-keepalive 2s] [-verbose]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dodo"
	"dodo/internal/sim"
)

func main() {
	listen := flag.String("listen", "0.0.0.0:7000", "UDP address to serve on")
	keepalive := flag.Duration("keepalive", 2*time.Second, "client keep-alive echo interval")
	misses := flag.Int("misses", 3, "missed keep-alives before a client's regions are reclaimed")
	incarnation := flag.Uint64("incarnation", 1, "monotonic instance number; bump on every restart so the directory rebuilds fenced from the dead instance (DESIGN.md §13)")
	verbose := flag.Bool("verbose", false, "log every operation")
	stats := flag.Duration("stats", 30*time.Second, "interval between stats lines (0 disables)")
	flag.Parse()

	cfg := dodo.ManagerConfig{
		KeepAliveInterval: *keepalive,
		KeepAliveMisses:   *misses,
		Incarnation:       *incarnation,
	}
	if *verbose {
		cfg.Logger = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	mgr, err := dodo.ListenManager(*listen, cfg)
	if err != nil {
		log.Fatalf("dodo-cmd: %v", err)
	}
	log.Printf("dodo-cmd: central manager serving on %s (incarnation %d)", mgr.Addr(), *incarnation)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tickStop := make(chan struct{})
	defer close(tickStop)
	var tick <-chan time.Time
	if *stats > 0 {
		tick = sim.Tick(sim.WallClock{}, *stats, tickStop)
	}
	for {
		select {
		case <-tick:
			s := mgr.Stats()
			fmt.Printf("dodo-cmd: hosts=%d regions=%d clients=%d allocs=%d fails=%d frees=%d stale=%d orphaned=%d\n",
				s.IdleHosts, s.Regions, s.Clients, s.Allocs, s.AllocFailures, s.Frees, s.StaleDrops, s.OrphanReclaims)
		case sig := <-stop:
			log.Printf("dodo-cmd: %v, shutting down", sig)
			if err := mgr.Close(); err != nil {
				log.Fatalf("dodo-cmd: shutdown: %v", err)
			}
			return
		}
	}
}
