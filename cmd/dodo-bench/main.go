// dodo-bench regenerates the paper's tables and figures from the
// reimplemented system (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	dodo-bench -exp all            # everything at paper scale
//	dodo-bench -exp fig8 -scale 0.125
//	dodo-bench -exp table1,fig1,fig2,fig7,fig8,reclaim,ablations,transport
//	dodo-bench -gobench BENCH_seed.json   # one pass of go test -bench
//	dodo-bench -compare old.json new.json # per-metric deltas + gate
//
// -gobench runs the repository benchmark suite once per benchmark
// (go test -bench . -benchtime 1x), parses the standard benchmark
// output — ns/op, B/op, allocs/op and custom units alike — and writes
// it as JSON to the named file. verify.sh uses it to record the
// BENCH_*.json perf trajectory.
//
// -compare diffs two such reports benchmark by benchmark, printing the
// percentage change of every shared metric, and exits non-zero when
// any shared benchmark's ns/op regressed by more than 10%. verify.sh
// runs it as the perf gate against the seed snapshot.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"dodo/internal/experiments"
	"dodo/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig2,fig7,fig8,reclaim,ablations,transport,all")
	scale := flag.Float64("scale", 1.0, "dataset/memory scale factor (1 = paper scale)")
	seed := flag.Int64("seed", 1999, "random seed")
	duration := flag.Duration("duration", 7*24*time.Hour, "monitoring-period length for the §2 study")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	gobench := flag.String("gobench", "", "run 'go test -bench . -benchtime 1x' once and write parsed results as JSON to this file, then exit")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime for -gobench (e.g. 1x for a smoke pass, 1s for gating-quality numbers)")
	pkgs := flag.String("pkgs", "", "comma-separated package list for -gobench (default: the standard suite)")
	compare := flag.Bool("compare", false, "compare two -gobench JSON reports (old new); exit 1 on a >10% ns/op regression")
	flag.Parse()
	if *gobench != "" {
		var pkgList []string
		if *pkgs != "" {
			pkgList = strings.Split(*pkgs, ",")
		}
		if err := runGoBench(*gobench, pkgList, *benchtime); err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
		return
	}
	if *compare {
		if flag.NArg() != 2 {
			log.Fatalf("dodo-bench: -compare wants exactly two arguments: old.json new.json")
		}
		regressed, err := compareReports(os.Stdout, flag.Arg(0), flag.Arg(1))
		if err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
		if regressed {
			os.Exit(1)
		}
		return
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
	}
	writeCSV := func(name string, fn func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
		if err := fn(f); err != nil {
			log.Fatalf("dodo-bench: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false
	out := os.Stdout

	if all || want["table1"] {
		ran = true
		fmt.Fprintln(out, "=== Table 1 ===")
		experiments.FormatTable1(out, experiments.Table1(6, *duration, *seed))
		fmt.Fprintln(out)
	}
	if all || want["fig1"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 1 ===")
		res := experiments.Figure1(*duration, *seed)
		experiments.FormatFigure1(out, res)
		for _, r := range res {
			experiments.FormatFigure1Series(out, r, 24)
			r := r
			writeCSV("fig1_"+r.Cluster+".csv", func(f *os.File) error {
				return experiments.WriteFigure1CSV(f, r)
			})
		}
		fmt.Fprintln(out)
	}
	if all || want["fig2"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 2 ===")
		f2 := experiments.Figure2(*duration, *seed)
		experiments.FormatFigure2(out, f2)
		for _, r := range f2 {
			r := r
			writeCSV("fig2_"+r.Class+".csv", func(f *os.File) error {
				return experiments.WriteFigure2CSV(f, r)
			})
		}
		fmt.Fprintln(out)
	}
	if all || want["fig7"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 7 ===")
		rows, err := experiments.Figure7(experiments.Figure7Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("dodo-bench: figure 7: %v", err)
		}
		experiments.FormatFigure7(out, rows)
		writeCSV("fig7.csv", func(f *os.File) error {
			return experiments.WriteFigure7CSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["fig8"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 8 ===")
		rows, err := experiments.Figure8(experiments.Figure8Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("dodo-bench: figure 8: %v", err)
		}
		experiments.FormatFigure8(out, rows)
		writeCSV("fig8.csv", func(f *os.File) error {
			return experiments.WriteFigure8CSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["reclaim"] {
		ran = true
		fmt.Fprintln(out, "=== Reclamation (§5.3.1) ===")
		rows := experiments.Reclamation(experiments.ReclaimConfig{
			Hosts: 24, Duration: *duration, Seed: *seed,
		})
		experiments.FormatReclamation(out, rows)
		writeCSV("reclaim.csv", func(f *os.File) error {
			return experiments.WriteReclaimCSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["ablations"] {
		ran = true
		fmt.Fprintln(out, "=== Ablations ===")
		experiments.FormatAllocator(out, experiments.AllocatorAblation(64<<20, 20000, *seed))
		fmt.Fprintln(out)
		policyRows, err := experiments.PolicyAblation(minf(*scale, 0.0625), *seed)
		if err != nil {
			log.Fatalf("dodo-bench: policy ablation: %v", err)
		}
		experiments.FormatPolicy(out, policyRows)
		fmt.Fprintln(out)
		refRows, err := experiments.RefractionAblation(minf(*scale, 0.0625), *seed)
		if err != nil {
			log.Fatalf("dodo-bench: refraction ablation: %v", err)
		}
		experiments.FormatRefraction(out, refRows)
		fmt.Fprintln(out)
		preRows, err := experiments.PrefetchAblation(minf(*scale, 0.0625), *seed)
		if err != nil {
			log.Fatalf("dodo-bench: prefetch ablation: %v", err)
		}
		experiments.FormatPrefetch(out, preRows)
		fmt.Fprintln(out)
		experiments.FormatHeadroom(out, experiments.HeadroomAblation(16, 3*24*time.Hour, *seed))
		fmt.Fprintln(out)
		nackRows, err := experiments.NackAblation(sim.WallClock{}, 0.05, 8, 256<<10, *seed)
		if err != nil {
			log.Fatalf("dodo-bench: NACK ablation: %v", err)
		}
		experiments.FormatNack(out, nackRows)
		fmt.Fprintln(out)
	}
	if all || want["transport"] {
		ran = true
		fmt.Fprintln(out, "=== Transport microbenchmark ===")
		experiments.FormatTransport(out, experiments.TransportMicro())
		fmt.Fprintln(out)
	}
	if !ran {
		log.Fatalf("dodo-bench: unknown experiment selection %q", *exp)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// benchResult is one parsed `go test -bench` line: the benchmark name
// (GOMAXPROCS suffix stripped), its iteration count, and every reported
// metric keyed by unit ("ns/op", "B/op", custom units alike).
type benchResult struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// benchReport is the -gobench output file shape. The trajectory scripts
// compare Metrics across BENCH_*.json snapshots, so the shape is flat
// and self-describing.
type benchReport struct {
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Benchtime  string        `json:"benchtime"`
	Command    string        `json:"command"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// runGoBench executes the repository benchmark suite and writes the
// parsed results to path as JSON. The default -benchtime 1x keeps it a
// smoke-speed perf seed, not a statistically settled measurement: the
// value is the committed trajectory, refined by later full runs. A
// caller that wants gating-quality numbers passes a real benchtime and
// (usually) a narrower package list.
func runGoBench(path string, pkgList []string, benchtime string) error {
	// The root package carries the end-to-end workload benchmarks;
	// internal/region carries the cache-level parallel benches
	// (BenchmarkCreadParallel, BenchmarkPrefetchPipeline) that track the
	// concurrent-cache trajectory; internal/bulk carries the data-plane
	// benches (legacy vs eager transfer) behind the read fast paths;
	// internal/core carries the protocol-level read benches
	// (BenchmarkSmallRead fastpath vs legacy). Benchmark names are
	// distinct across the four, so the flat report stays collision-free.
	if len(pkgList) == 0 {
		pkgList = []string{".", "./internal/region", "./internal/bulk", "./internal/core"}
	}
	if benchtime == "" {
		benchtime = "1x"
	}
	args := append([]string{"test", "-bench", ".", "-benchtime", benchtime, "-run", "^$"}, pkgList...)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	report := benchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Benchtime: benchtime,
		Command:   "go " + strings.Join(args, " "),
	}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name N v1 unit1 v2 unit2 ... — anything shorter is a header
		// or a benchmark that reported nothing.
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		res := benchResult{Name: name, Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		report.Benchmarks = append(report.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(report.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines in go test output")
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadReport reads one -gobench JSON snapshot.
func loadReport(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// regressionThreshold is the ns/op growth, old to new, past which
// -compare fails the comparison.
const regressionThreshold = 0.10

// compareReports prints per-benchmark metric deltas between two
// -gobench snapshots and reports whether any benchmark present in both
// regressed its ns/op by more than regressionThreshold. Benchmarks or
// metrics present on only one side are listed but never gate: a new
// benchmark has no baseline, and a removed one has no measurement.
func compareReports(w io.Writer, oldPath, newPath string) (regressed bool, err error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return false, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return false, err
	}
	oldBy := make(map[string]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool)
	for _, nb := range newRep.Benchmarks {
		seen[nb.Name] = true
		ob, shared := oldBy[nb.Name]
		if !shared {
			fmt.Fprintf(w, "%-44s (new benchmark, no baseline)\n", nb.Name)
			continue
		}
		fmt.Fprintf(w, "%s\n", nb.Name)
		units := make([]string, 0, len(nb.Metrics))
		for unit := range nb.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			nv := nb.Metrics[unit]
			ov, ok := ob.Metrics[unit]
			if !ok {
				fmt.Fprintf(w, "  %-16s %14.4g  (no baseline)\n", unit, nv)
				continue
			}
			var pct float64
			if ov != 0 {
				pct = (nv - ov) / ov * 100
			}
			mark := ""
			if unit == "ns/op" && ov > 0 && (nv-ov)/ov > regressionThreshold {
				regressed = true
				mark = "  REGRESSION"
			}
			fmt.Fprintf(w, "  %-16s %14.4g -> %-14.4g %+7.1f%%%s\n", unit, ov, nv, pct, mark)
		}
	}
	for _, ob := range oldRep.Benchmarks {
		if !seen[ob.Name] {
			fmt.Fprintf(w, "%-44s (removed; present only in %s)\n", ob.Name, oldPath)
		}
	}
	return regressed, nil
}
