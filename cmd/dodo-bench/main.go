// dodo-bench regenerates the paper's tables and figures from the
// reimplemented system (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Usage:
//
//	dodo-bench -exp all            # everything at paper scale
//	dodo-bench -exp fig8 -scale 0.125
//	dodo-bench -exp table1,fig1,fig2,fig7,fig8,reclaim,ablations,transport
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dodo/internal/experiments"
	"dodo/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments: table1,fig1,fig2,fig7,fig8,reclaim,ablations,transport,all")
	scale := flag.Float64("scale", 1.0, "dataset/memory scale factor (1 = paper scale)")
	seed := flag.Int64("seed", 1999, "random seed")
	duration := flag.Duration("duration", 7*24*time.Hour, "monitoring-period length for the §2 study")
	csvDir := flag.String("csv", "", "also write plot-ready CSV files into this directory")
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
	}
	writeCSV := func(name string, fn func(f *os.File) error) {
		if *csvDir == "" {
			return
		}
		path := filepath.Join(*csvDir, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
		if err := fn(f); err != nil {
			log.Fatalf("dodo-bench: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("dodo-bench: %v", err)
		}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	ran := false
	out := os.Stdout

	if all || want["table1"] {
		ran = true
		fmt.Fprintln(out, "=== Table 1 ===")
		experiments.FormatTable1(out, experiments.Table1(6, *duration, *seed))
		fmt.Fprintln(out)
	}
	if all || want["fig1"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 1 ===")
		res := experiments.Figure1(*duration, *seed)
		experiments.FormatFigure1(out, res)
		for _, r := range res {
			experiments.FormatFigure1Series(out, r, 24)
			r := r
			writeCSV("fig1_"+r.Cluster+".csv", func(f *os.File) error {
				return experiments.WriteFigure1CSV(f, r)
			})
		}
		fmt.Fprintln(out)
	}
	if all || want["fig2"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 2 ===")
		f2 := experiments.Figure2(*duration, *seed)
		experiments.FormatFigure2(out, f2)
		for _, r := range f2 {
			r := r
			writeCSV("fig2_"+r.Class+".csv", func(f *os.File) error {
				return experiments.WriteFigure2CSV(f, r)
			})
		}
		fmt.Fprintln(out)
	}
	if all || want["fig7"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 7 ===")
		rows, err := experiments.Figure7(experiments.Figure7Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("dodo-bench: figure 7: %v", err)
		}
		experiments.FormatFigure7(out, rows)
		writeCSV("fig7.csv", func(f *os.File) error {
			return experiments.WriteFigure7CSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["fig8"] {
		ran = true
		fmt.Fprintln(out, "=== Figure 8 ===")
		rows, err := experiments.Figure8(experiments.Figure8Config{Scale: *scale, Seed: *seed})
		if err != nil {
			log.Fatalf("dodo-bench: figure 8: %v", err)
		}
		experiments.FormatFigure8(out, rows)
		writeCSV("fig8.csv", func(f *os.File) error {
			return experiments.WriteFigure8CSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["reclaim"] {
		ran = true
		fmt.Fprintln(out, "=== Reclamation (§5.3.1) ===")
		rows := experiments.Reclamation(experiments.ReclaimConfig{
			Hosts: 24, Duration: *duration, Seed: *seed,
		})
		experiments.FormatReclamation(out, rows)
		writeCSV("reclaim.csv", func(f *os.File) error {
			return experiments.WriteReclaimCSV(f, rows)
		})
		fmt.Fprintln(out)
	}
	if all || want["ablations"] {
		ran = true
		fmt.Fprintln(out, "=== Ablations ===")
		experiments.FormatAllocator(out, experiments.AllocatorAblation(64<<20, 20000, *seed))
		fmt.Fprintln(out)
		policyRows, err := experiments.PolicyAblation(minf(*scale, 0.0625), *seed)
		if err != nil {
			log.Fatalf("dodo-bench: policy ablation: %v", err)
		}
		experiments.FormatPolicy(out, policyRows)
		fmt.Fprintln(out)
		refRows, err := experiments.RefractionAblation(minf(*scale, 0.0625), *seed)
		if err != nil {
			log.Fatalf("dodo-bench: refraction ablation: %v", err)
		}
		experiments.FormatRefraction(out, refRows)
		fmt.Fprintln(out)
		experiments.FormatHeadroom(out, experiments.HeadroomAblation(16, 3*24*time.Hour, *seed))
		fmt.Fprintln(out)
		nackRows, err := experiments.NackAblation(sim.WallClock{}, 0.05, 8, 256<<10, *seed)
		if err != nil {
			log.Fatalf("dodo-bench: NACK ablation: %v", err)
		}
		experiments.FormatNack(out, nackRows)
		fmt.Fprintln(out)
	}
	if all || want["transport"] {
		ran = true
		fmt.Fprintln(out, "=== Transport microbenchmark ===")
		experiments.FormatTransport(out, experiments.TransportMicro())
		fmt.Fprintln(out)
	}
	if !ran {
		log.Fatalf("dodo-bench: unknown experiment selection %q", *exp)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
