// dodo-ctl inspects a running Dodo cluster: it queries the central
// manager for its idle-workstation directory and operation counters.
//
// The manager keeps no persistent state, so dodo-ctl may race a crash:
// when the query fails it retries under a capped-exponential backoff
// (long enough to ride out a restart and the directory rebuild) before
// giving up.
//
// Usage:
//
//	dodo-ctl -manager cmdhost:7000 [-watch 5s] [-retry 30s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dodo"
	"dodo/internal/retry"
	"dodo/internal/sim"
)

func main() {
	managerAddr := flag.String("manager", "", "central manager address (required)")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once and exit)")
	retryFor := flag.Duration("retry", 30*time.Second, "keep retrying an unreachable manager this long (0 = fail fast)")
	flag.Parse()
	if *managerAddr == "" {
		log.Fatal("dodo-ctl: -manager is required")
	}
	for {
		stats, err := query(*managerAddr, *retryFor)
		if err != nil {
			log.Fatalf("dodo-ctl: %v", err)
		}
		print(stats)
		if *watch <= 0 {
			return
		}
		sim.WallClock{}.Sleep(*watch)
		fmt.Fprintln(os.Stdout)
	}
}

// query polls the manager, riding out a crash/restart window with a
// capped-backoff retry budget instead of failing on the first timeout.
func query(addr string, retryFor time.Duration) (dodo.ClusterState, error) {
	clock := sim.WallClock{}
	budget := retry.New(retry.Policy{
		Deadline: retryFor,
		Base:     250 * time.Millisecond,
		Cap:      5 * time.Second,
		Factor:   2,
	}, clock, nil)
	for {
		stats, err := dodo.QueryCluster(addr)
		if err == nil {
			return stats, nil
		}
		delay, more := budget.Next()
		if !more {
			return dodo.ClusterState{}, err
		}
		fmt.Fprintf(os.Stderr, "dodo-ctl: %v; retrying in %v\n", err, delay.Round(time.Millisecond))
		clock.Sleep(delay)
	}
}

func print(s dodo.ClusterState) {
	fmt.Printf("manager: incarnation %d, %d idle hosts, %d regions, %d clients\n",
		s.Incarnation, len(s.Hosts), s.Regions, s.Clients)
	fmt.Printf("counters: %d allocs (%d failed), %d frees, %d stale drops, %d orphan reclaims\n",
		s.Allocs, s.AllocFailures, s.Frees, s.StaleDrops, s.OrphanReclaims)
	fmt.Printf("recovery: %d drops, %d revalidations, %d re-opens\n",
		s.ClientDrops, s.ClientRevalidations, s.ClientReopens)
	fmt.Printf("rebuild: %d inventory reports, %d regions rebuilt, %d fenced requests\n",
		s.InventoryReports, s.RebuiltRegions, s.FencedRequests)
	fmt.Printf("handoff: %d offers, %d pages moved, %d aborted, %d adopted by clients\n",
		s.HandoffOffers, s.HandoffPagesMoved, s.HandoffAborts, s.ClientHandoffAdopts)
	fmt.Printf("hedging: %d hedged reads (%d disk wins, %d wasted), %d retry budgets exhausted\n",
		s.ClientHedgedReads, s.ClientHedgeWins, s.ClientHedgeWasted, s.ClientRetryExhausted)
	fmt.Printf("integrity: %d page-checksum failures\n", s.ClientChecksumFailures)
	for _, h := range s.CorruptHosts {
		fmt.Printf("  corrupt frames from %-24s %d\n", h.Addr, h.Count)
	}
	if len(s.Hosts) == 0 {
		return
	}
	fmt.Printf("%-24s %8s %12s %12s\n", "host", "epoch", "avail", "largest")
	for _, h := range s.Hosts {
		fmt.Printf("%-24s %8d %9d MB %9d MB\n", h.Addr, h.Epoch, h.AvailBytes>>20, h.LargestFree>>20)
	}
}
