// dodo-ctl inspects a running Dodo cluster: it queries the central
// manager for its idle-workstation directory and operation counters.
//
// Usage:
//
//	dodo-ctl -manager cmdhost:7000 [-watch 5s]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dodo"
	"dodo/internal/sim"
)

func main() {
	managerAddr := flag.String("manager", "", "central manager address (required)")
	watch := flag.Duration("watch", 0, "refresh interval (0 = print once and exit)")
	flag.Parse()
	if *managerAddr == "" {
		log.Fatal("dodo-ctl: -manager is required")
	}
	for {
		stats, err := dodo.QueryCluster(*managerAddr)
		if err != nil {
			log.Fatalf("dodo-ctl: %v", err)
		}
		print(stats)
		if *watch <= 0 {
			return
		}
		sim.WallClock{}.Sleep(*watch)
		fmt.Fprintln(os.Stdout)
	}
}

func print(s dodo.ClusterState) {
	fmt.Printf("manager: %d idle hosts, %d regions, %d clients\n", len(s.Hosts), s.Regions, s.Clients)
	fmt.Printf("counters: %d allocs (%d failed), %d frees, %d stale drops, %d orphan reclaims\n",
		s.Allocs, s.AllocFailures, s.Frees, s.StaleDrops, s.OrphanReclaims)
	fmt.Printf("recovery: %d drops, %d revalidations, %d re-opens\n",
		s.ClientDrops, s.ClientRevalidations, s.ClientReopens)
	fmt.Printf("handoff: %d offers, %d pages moved, %d aborted, %d adopted by clients\n",
		s.HandoffOffers, s.HandoffPagesMoved, s.HandoffAborts, s.ClientHandoffAdopts)
	fmt.Printf("hedging: %d hedged reads (%d disk wins, %d wasted), %d retry budgets exhausted\n",
		s.ClientHedgedReads, s.ClientHedgeWins, s.ClientHedgeWasted, s.ClientRetryExhausted)
	if len(s.Hosts) == 0 {
		return
	}
	fmt.Printf("%-24s %8s %12s %12s\n", "host", "epoch", "avail", "largest")
	for _, h := range s.Hosts {
		fmt.Printf("%-24s %8d %9d MB %9d MB\n", h.Addr, h.Epoch, h.AvailBytes>>20, h.LargestFree>>20)
	}
}
