// dodo-rmd is Dodo's resource monitor daemon (rmd, §4.1) for desktop
// workstations: it samples console activity and load once a second,
// starts an idle memory daemon when the machine has been idle for five
// minutes, and drains it the moment the owner returns.
//
// Usage:
//
//	dodo-rmd -manager cmdhost:7000 [-listen 0.0.0.0:7001] [-pool 100M]
//	         [-idle-after 5m] [-load 0.3] [-outside-hours 9-17]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"dodo"
	"dodo/internal/monitor"
	"dodo/internal/sim"
)

func parseSize(s string) (uint64, error) {
	mult := uint64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "G"):
		mult, upper = 1<<30, strings.TrimSuffix(upper, "G")
	case strings.HasSuffix(upper, "M"):
		mult, upper = 1<<20, strings.TrimSuffix(upper, "M")
	case strings.HasSuffix(upper, "K"):
		mult, upper = 1<<10, strings.TrimSuffix(upper, "K")
	}
	n, err := strconv.ParseUint(upper, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func main() {
	listen := flag.String("listen", "0.0.0.0:7001", "UDP address for the imd to serve on")
	managerAddr := flag.String("manager", "", "central manager address (required)")
	poolFlag := flag.String("pool", "100M", "memory pool harvested while idle")
	idleAfter := flag.Duration("idle-after", 5*time.Minute, "quiet time before recruiting (paper: 5m)")
	loadThreshold := flag.Float64("load", 0.3, "adjusted-load ceiling (paper: 0.3)")
	outsideHours := flag.String("outside-hours", "", "never recruit during these weekday hours, e.g. \"9-17\"")
	verbose := flag.Bool("verbose", false, "log recruit/reclaim transitions")
	flag.Parse()

	if *managerAddr == "" {
		log.Fatal("dodo-rmd: -manager is required")
	}
	pool, err := parseSize(*poolFlag)
	if err != nil {
		log.Fatalf("dodo-rmd: %v", err)
	}
	var rules monitor.RuleSet
	if *outsideHours != "" {
		var lo, hi int
		if _, err := fmt.Sscanf(*outsideHours, "%d-%d", &lo, &hi); err != nil {
			log.Fatalf("dodo-rmd: bad -outside-hours %q: %v", *outsideHours, err)
		}
		rules = append(rules, monitor.OutsideHours{StartHour: lo, EndHour: hi, Days: monitor.Weekdays})
	}

	var logger *log.Logger
	if *verbose {
		logger = log.New(os.Stderr, "", log.LstdFlags)
	}

	var (
		mu    sync.Mutex
		d     *dodo.IMD
		epoch uint64
	)
	hooks := dodo.MonitorHooks{
		OnRecruit: func(now time.Time) {
			mu.Lock()
			defer mu.Unlock()
			epoch++
			var err error
			d, err = dodo.ListenIMD(*listen, dodo.IMDConfig{
				ManagerAddr: *managerAddr,
				PoolSize:    pool,
				Epoch:       epoch,
				Logger:      logger,
			})
			if err != nil {
				log.Printf("dodo-rmd: starting imd: %v", err)
				d = nil
				return
			}
			log.Printf("dodo-rmd: idle; recruited with %d MB pool (epoch %d)", pool>>20, epoch)
		},
		OnReclaim: func(now time.Time) {
			mu.Lock()
			daemon := d
			d = nil
			mu.Unlock()
			if daemon != nil {
				daemon.Drain()
				log.Printf("dodo-rmd: owner returned; imd drained")
			}
		},
	}

	mon := dodo.NewMonitor(monitor.NewSystemSource(), dodo.MonitorConfig{
		IdleAfter:     *idleAfter,
		LoadThreshold: *loadThreshold,
		Rules:         rules,
	}, hooks)

	log.Printf("dodo-rmd: monitoring (idle-after %v, load < %.2f, rules: %s)",
		*idleAfter, *loadThreshold, rules)

	stopCh := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stopCh)
	}()
	clk := sim.WallClock{}
	tick := sim.Tick(clk, time.Second, stopCh)
	for {
		select {
		case <-stopCh:
			hooks.OnReclaim(clk.Now())
			log.Printf("dodo-rmd: shutting down")
			return
		case now := <-tick:
			mon.Step(now)
		}
	}
}
