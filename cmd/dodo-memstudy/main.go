// dodo-memstudy regenerates the idle-memory availability study that
// motivated Dodo (§2 of the paper; Acharya & Setia [2]): Table 1's
// per-class memory breakdown and the Figure 1 / Figure 2 availability
// series for the two monitored clusters.
//
// Usage:
//
//	dodo-memstudy [-duration 168h] [-hosts 6] [-seed 42] [-series]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dodo/internal/experiments"
)

func main() {
	duration := flag.Duration("duration", 7*24*time.Hour, "monitoring period")
	hosts := flag.Int("hosts", 6, "hosts per class for the Table 1 study")
	seed := flag.Int64("seed", 42, "random seed")
	series := flag.Bool("series", false, "print the downsampled Figure 1 time series")
	flag.Parse()

	out := os.Stdout
	experiments.FormatTable1(out, experiments.Table1(*hosts, *duration, *seed))
	fmt.Fprintln(out)

	res := experiments.Figure1(*duration, *seed)
	experiments.FormatFigure1(out, res)
	if *series {
		for _, r := range res {
			fmt.Fprintln(out)
			experiments.FormatFigure1Series(out, r, 36)
		}
	}
	fmt.Fprintln(out)
	experiments.FormatFigure2(out, experiments.Figure2(*duration, *seed))
}
