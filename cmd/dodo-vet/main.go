// dodo-vet is the repository's static-analysis suite: it loads every
// package matched by its arguments and enforces the determinism and
// concurrency invariants the simulation-backed evaluation depends on
// (see internal/vet for the rules).
//
// Usage:
//
//	dodo-vet [-list] [-rules clock-discipline,seeded-rand] [packages...]
//
// With no package arguments it checks ./... . Findings print one per
// line as "file:line: analyzer: message"; the exit status is 1 when any
// invariant is violated, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dodo/internal/vet"
)

func main() {
	list := flag.Bool("list", false, "print the available rules and exit")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all)")
	flag.Parse()

	if *list {
		for _, a := range vet.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := vet.All()
	if *rules != "" {
		byName := make(map[string]*vet.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*rules, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dodo-vet: unknown rule %q (see -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dodo-vet: %v\n", err)
		os.Exit(2)
	}
	passes, err := vet.LoadPackages(wd, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dodo-vet: %v\n", err)
		os.Exit(2)
	}

	findings := vet.Check(passes, analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dodo-vet: %d finding(s) in %d package(s)\n", len(findings), len(passes))
		os.Exit(1)
	}
}
