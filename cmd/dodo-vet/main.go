// dodo-vet is the repository's static-analysis suite: it loads every
// package matched by its arguments and enforces the determinism and
// concurrency invariants the simulation-backed evaluation depends on
// (see internal/vet for the rules).
//
// Usage:
//
//	dodo-vet [-list] [-json] [-sarif] [-only rules] [-skip rules] [packages...]
//
// With no package arguments it checks ./... . Findings print one per
// line as "file:line: analyzer: message", as a JSON array with -json,
// or as a SARIF 2.1.0 log with -sarif (the format code-scanning
// dashboards ingest; every selected rule appears in the log's rule
// table whether or not it fired, and file paths are relative to the
// working directory). -list prints every registered rule with its
// one-line doc and exits. Rule selection:
//
//	-only lock-order,buffer-ownership   run only the named rules
//	-skip wire-exhaustiveness           run all but the named rules
//	-rules a,b                          legacy alias for -only
//
// With -json, a load failure is reported as a JSON object
// {"error": "..."} on stdout (exit status 2 as usual) so scripted
// consumers never have to parse stderr.
//
// Exit status:
//
//	0  no findings
//	1  at least one invariant violated
//	2  usage error, or the packages could not be loaded
//
// Packages go list matches but cannot analyze (a compile error, a
// dependency with no export data) are reported on stderr and skipped;
// they do not affect the exit status.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dodo/internal/vet"
)

// jsonFinding is the -json output shape, one element per finding.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "print the available rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log on stdout")
	only := flag.String("only", "", "comma-separated rule names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated rule names to leave out")
	rules := flag.String("rules", "", "alias for -only (kept for older scripts)")
	flag.Parse()

	if *list {
		for _, a := range vet.All() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "dodo-vet: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	if *only != "" && *rules != "" {
		fmt.Fprintln(os.Stderr, "dodo-vet: -only and -rules are aliases; give one")
		os.Exit(2)
	}
	if *rules != "" {
		*only = *rules
	}
	if *only != "" && *skip != "" {
		fmt.Fprintln(os.Stderr, "dodo-vet: -only and -skip are mutually exclusive")
		os.Exit(2)
	}

	analyzers := vet.All()
	byName := make(map[string]*vet.Analyzer)
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	parseNames := func(csv string) []string {
		var names []string
		for _, name := range strings.Split(csv, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, ok := byName[name]; !ok {
				fmt.Fprintf(os.Stderr, "dodo-vet: unknown rule %q (see -list)\n", name)
				os.Exit(2)
			}
			names = append(names, name)
		}
		return names
	}
	switch {
	case *only != "":
		analyzers = nil
		for _, name := range parseNames(*only) {
			analyzers = append(analyzers, byName[name])
		}
	case *skip != "":
		skipped := make(map[string]bool)
		for _, name := range parseNames(*skip) {
			skipped[name] = true
		}
		kept := analyzers[:0]
		for _, a := range analyzers {
			if !skipped[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "dodo-vet: no rules selected")
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// loadFail reports a fatal load problem and exits 2. Under -json
	// the report goes to stdout as {"error": "..."} so consumers of the
	// JSON stream see the failure in-band rather than on stderr.
	loadFail := func(format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(map[string]string{"error": msg})
		} else {
			fmt.Fprintf(os.Stderr, "dodo-vet: %s\n", msg)
		}
		os.Exit(2)
	}
	wd, err := os.Getwd()
	if err != nil {
		loadFail("%v", err)
	}
	passes, skippedPkgs, err := vet.LoadPackages(wd, patterns...)
	if err != nil {
		loadFail("%v", err)
	}
	for _, s := range skippedPkgs {
		fmt.Fprintf(os.Stderr, "dodo-vet: skipping %s\n", s)
	}
	if len(passes) == 0 {
		loadFail("no packages to analyze")
	}

	findings := vet.Check(passes, analyzers)
	switch {
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vet.NewSARIFLog(analyzers, findings, wd)); err != nil {
			fmt.Fprintf(os.Stderr, "dodo-vet: %v\n", err)
			os.Exit(2)
		}
	case *jsonOut:
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:     f.Pos.Filename,
				Line:     f.Pos.Line,
				Analyzer: f.Analyzer,
				Message:  f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "dodo-vet: %v\n", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "dodo-vet: %d finding(s) in %d package(s)\n", len(findings), len(passes))
		os.Exit(1)
	}
}
