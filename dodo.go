// Package dodo is the public face of this reproduction of "Dodo: A
// User-level System for Exploiting Idle Memory in Workstation Clusters"
// (Koussih, Acharya, Setia; HPDC 1999).
//
// Dodo lets data-intensive applications use the idle memory of other
// workstations as a cache layer between local memory and disk, entirely
// at user level. A deployment consists of:
//
//   - one central manager daemon (cmd) on a dedicated machine;
//   - a resource monitor daemon (rmd) on every participating
//     workstation, which forks an idle memory daemon (imd) while the
//     machine is idle and kills it when the owner returns;
//   - the runtime library linked into each application, exposing the
//     explicit Mopen/Mread/Mwrite/Mclose/Msync API of the paper, with
//     the optional region-management library (Copen/Cread/...) layered
//     on top.
//
// This package re-exports the client-side API and provides convenience
// constructors that wire the pieces over UDP (the daemons also run over
// the U-Net-style usocket substrate; see the cmd/ binaries). The
// subsystem packages live under internal/: the wire protocol, the bulk
// transfer protocol with selective NACKs, the daemons, the
// replacement-policy modules, the calibrated disk/network simulation
// substrate and the experiment harness that regenerates every table and
// figure of the paper.
package dodo

import (
	"fmt"
	"os"

	"dodo/internal/bulk"
	"dodo/internal/core"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/region"
	"dodo/internal/transport"
	"dodo/internal/wire"
)

// Client is the Dodo runtime library (libdodo): the paper's explicit
// remote-memory API. Obtain one with Dial.
type Client = core.Client

// ClientConfig tunes the runtime library.
type ClientConfig = core.Config

// Backing is the disk store behind a region; FileBacking wraps *os.File
// and MemBacking provides an in-memory store for tests.
type Backing = core.Backing

// FileBacking adapts an *os.File opened read-write.
type FileBacking = core.FileBacking

// MemBacking is an in-memory Backing.
type MemBacking = core.MemBacking

// RegionCache is the region-management library (libmanage): a local
// cache of regions with pluggable replacement policies, layered over the
// Client.
type RegionCache = region.Cache

// RegionConfig tunes the region cache.
type RegionConfig = region.Config

// Policy is a replacement-policy module (LRU, MRU, first-in, FIFO).
type Policy = region.Policy

// Errors mirroring the paper's errno-style results.
var (
	// ErrNoMem is ENOMEM: no remote memory, or the region is inactive.
	ErrNoMem = core.ErrNoMem
	// ErrInval is EINVAL: bad descriptor, offset, length or backing.
	ErrInval = core.ErrInval
)

// NewFileBacking wraps an open, writable file as a region backing.
func NewFileBacking(f *os.File) (*FileBacking, error) { return core.NewFileBacking(f) }

// NewMemBacking creates an in-memory backing with the given inode id.
func NewMemBacking(inode uint64, size int) *MemBacking { return core.NewMemBacking(inode, size) }

// Dial connects a client runtime to the central manager at managerAddr
// ("host:port") over UDP, binding the local endpoint to localAddr (pass
// "0.0.0.0:0" or "127.0.0.1:0" for an ephemeral port).
func Dial(localAddr, managerAddr string, cfg ClientConfig) (*Client, error) {
	tr, err := transport.ListenUDP(localAddr)
	if err != nil {
		return nil, fmt.Errorf("dodo: %w", err)
	}
	cfg.ManagerAddr = managerAddr
	return core.New(tr, cfg), nil
}

// NewClient attaches a client runtime to an existing transport; tests
// and single-process deployments use this with in-memory networks.
func NewClient(tr transport.Transport, cfg ClientConfig) *Client { return core.New(tr, cfg) }

// NewRegionCache layers the region-management library over a client.
// Policy defaults to LRU; use NewPolicy to pick another (§3.3's
// csetPolicy corresponds to (*RegionCache).SetPolicy).
func NewRegionCache(cli *Client, cfg RegionConfig) *RegionCache { return region.NewCache(cli, cfg) }

// NewPolicy returns the named replacement policy: "lru", "mru",
// "first-in" or "fifo".
func NewPolicy(name string) (Policy, error) { return region.NewPolicy(name) }

// Manager is the central manager daemon (cmd).
type Manager = manager.Manager

// ManagerConfig tunes the manager.
type ManagerConfig = manager.Config

// ListenManager starts a central manager on a UDP address.
func ListenManager(addr string, cfg ManagerConfig) (*Manager, error) {
	tr, err := transport.ListenUDP(addr)
	if err != nil {
		return nil, fmt.Errorf("dodo: %w", err)
	}
	return manager.New(tr, cfg), nil
}

// IMD is the idle memory daemon.
type IMD = imd.Daemon

// IMDConfig tunes an idle memory daemon.
type IMDConfig = imd.Config

// ListenIMD starts an idle memory daemon on a UDP address, registering
// it with the manager named in cfg.ManagerAddr.
func ListenIMD(addr string, cfg IMDConfig) (*IMD, error) {
	tr, err := transport.ListenUDP(addr)
	if err != nil {
		return nil, fmt.Errorf("dodo: %w", err)
	}
	return imd.New(tr, cfg), nil
}

// Monitor is the resource monitor daemon's policy engine (rmd).
type Monitor = monitor.Monitor

// MonitorConfig tunes the idleness predicate.
type MonitorConfig = monitor.Config

// MonitorHooks receive recruit/reclaim transitions.
type MonitorHooks = monitor.Hooks

// NewMonitor builds an rmd state machine over an activity source; use
// monitor.NewSystemSource for live Linux probes.
func NewMonitor(src monitor.Source, cfg MonitorConfig, hooks MonitorHooks) *Monitor {
	return monitor.New(src, cfg, hooks)
}

// HarvestLimit computes the maximum pool an imd may allocate on a host
// given its memory usage (§3.1: in-use + paging free list + 15% headroom
// stay untouched). Pass headroomFrac < 0 for the paper's 15%.
func HarvestLimit(m monitor.MemSample, headroomFrac float64) uint64 {
	return monitor.HarvestLimit(m, headroomFrac)
}

// EndpointConfig tunes the messaging layer (timeouts, retry budgets,
// bulk-transfer windows) for any of the constructors above.
type EndpointConfig = bulk.Config

// ClusterState is a snapshot of a running cluster, from the central
// manager's perspective (the dodo-ctl view).
type ClusterState struct {
	Hosts   []wire.HostInfo
	Regions uint64
	Clients uint64

	Allocs, AllocFailures, Frees, StaleDrops, OrphanReclaims uint64
	// Graceful-reclaim handoff counters: offers received from draining
	// imds, pages successfully repointed to peers, and grants aborted
	// (grace window expired or push failed).
	HandoffOffers, HandoffPagesMoved, HandoffAborts uint64
	// Client recovery counters, aggregated by the manager from
	// keep-alive acks: drop-host events, checkAlloc revalidation probes,
	// and transparent region re-opens.
	ClientDrops, ClientRevalidations, ClientReopens uint64
	// Client graceful-reclaim/hedging counters: regions adopted from
	// handoff copies without repopulation, hedged reads issued, hedges
	// the backup won, hedges wasted (remote still answered first), and
	// operations whose retry budget ran dry.
	ClientHandoffAdopts, ClientHedgedReads, ClientHedgeWins uint64
	ClientHedgeWasted, ClientRetryExhausted                 uint64
	// Crash-recovery view: the manager's incarnation number and the
	// soft-state rebuild counters for the current incarnation (inventory
	// re-reports accepted, RD rows rebuilt from them, requests fenced for
	// carrying a dead incarnation).
	Incarnation      uint64
	InventoryReports uint64
	RebuiltRegions   uint64
	FencedRequests   uint64
	// End-to-end page-checksum failures observed by clients, with a
	// per-host breakdown by the host that served the corrupt frame.
	ClientChecksumFailures uint64
	CorruptHosts           []wire.HostCount
}

// QueryCluster asks the central manager at managerAddr (over UDP) for
// its current state.
func QueryCluster(managerAddr string) (ClusterState, error) {
	tr, err := transport.ListenUDP("0.0.0.0:0")
	if err != nil {
		return ClusterState{}, fmt.Errorf("dodo: %w", err)
	}
	ep := bulk.NewEndpoint(tr, bulk.Config{}, nil)
	defer ep.Close()
	resp, err := ep.Call(managerAddr, &wire.ClusterStatsReq{})
	if err != nil {
		return ClusterState{}, fmt.Errorf("dodo: querying %s: %w", managerAddr, err)
	}
	st, ok := resp.(*wire.ClusterStatsResp)
	if !ok || st.Status != wire.StatusOK {
		return ClusterState{}, fmt.Errorf("dodo: manager refused the stats query")
	}
	return ClusterState{
		Hosts:                st.Hosts,
		Regions:              st.Regions,
		Clients:              st.Clients,
		Allocs:               st.Allocs,
		AllocFailures:        st.AllocFailures,
		Frees:                st.Frees,
		StaleDrops:           st.StaleDrops,
		OrphanReclaims:       st.OrphanReclaims,
		HandoffOffers:        st.HandoffOffers,
		HandoffPagesMoved:    st.HandoffPagesMoved,
		HandoffAborts:        st.HandoffAborts,
		ClientDrops:          st.ClientDrops,
		ClientRevalidations:  st.ClientRevalidations,
		ClientReopens:        st.ClientReopens,
		ClientHandoffAdopts:  st.ClientHandoffAdopts,
		ClientHedgedReads:    st.ClientHedgedReads,
		ClientHedgeWins:      st.ClientHedgeWins,
		ClientHedgeWasted:    st.ClientHedgeWasted,
		ClientRetryExhausted: st.ClientRetryExhausted,

		Incarnation:            st.Incarnation,
		InventoryReports:       st.InventoryReports,
		RebuiltRegions:         st.RebuiltRegions,
		FencedRequests:         st.FencedRequests,
		ClientChecksumFailures: st.ClientChecksumFailures,
		CorruptHosts:           st.CorruptHosts,
	}, nil
}
