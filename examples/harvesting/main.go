// Harvesting: a non-dedicated desktop cluster (§3, §4.1) in one
// process. Each workstation runs a resource monitor; idle machines are
// recruited (an imd is forked with a harvest-limited pool), busy ones
// are reclaimed the moment their owner returns — and the application's
// region descriptors on that host are dropped, falling back to disk,
// exactly as §3.1 prescribes.
//
// Run with: go run ./examples/harvesting
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"time"

	"dodo"
	"dodo/internal/bulk"
	"dodo/internal/cluster"
	"dodo/internal/core"
	"dodo/internal/manager"
	"dodo/internal/monitor"
	"dodo/internal/sim"
	"dodo/internal/trace"
)

// clk is the example\'s clock: examples run live against real
// daemons, so it is the wall clock.
var clk = sim.WallClock{}

func main() {
	start := time.Date(1999, 8, 2, 10, 0, 0, 0, time.UTC)
	ep := bulk.Config{
		CallTimeout:   200 * time.Millisecond,
		CallRetries:   3,
		WindowTimeout: 100 * time.Millisecond,
		NackDelay:     40 * time.Millisecond,
	}
	c := cluster.New(cluster.Config{
		Monitor:  monitor.Config{IdleAfter: 2 * time.Second},
		Endpoint: ep,
		Manager:  manager.Config{KeepAliveInterval: 500 * time.Millisecond, Endpoint: ep},
	})
	defer c.Close()

	// Pool sizing via the §3.1 harvest limit, from a synthetic memory
	// sample of a 128 MB-class workstation.
	host := trace.NewHost(trace.Class128MB, trace.ProfileClusterA, 1)
	sample := host.Step(start, time.Minute)
	harvest := dodo.HarvestLimit(sample.Mem, -1)
	fmt.Printf("harvest limit for a 128MB host: %d MB (in use %d MB, 15%% headroom reserved)\n",
		harvest>>20, sample.Mem.InUse()>>20)

	// ws1 goes busy at t=25s (the owner returns); ws2 and ws3 stay idle.
	stations := []*cluster.Workstation{
		c.AddWorkstation("ws1", cluster.Scripted(start, map[int]bool{25: true})),
		c.AddWorkstation("ws2", cluster.AlwaysIdle()),
		c.AddWorkstation("ws3", cluster.AlwaysIdle()),
	}
	for _, w := range stations {
		w.SetPool(harvest)
	}
	step := func(sec int) {
		for _, w := range stations {
			w.Step(start.Add(time.Duration(sec) * time.Second))
		}
	}
	for sec := 0; sec <= 3; sec++ {
		step(sec)
	}
	waitForHosts(c, 3)
	fmt.Printf("all 3 workstations idle and recruited (%d MB pools)\n", harvest>>20)

	// An application spreads regions across the harvested memory.
	cli := c.NewClient("app", core.Config{ClientID: 1})
	backing := dodo.NewMemBacking(5, 1<<20)
	payload := bytes.Repeat([]byte{0xAB}, 64<<10)
	var fds []int
	for i := 0; i < 6; i++ {
		fd, err := cli.Mopen(64<<10, backing, int64(i)*64<<10)
		if err != nil {
			log.Fatalf("mopen %d: %v", i, err)
		}
		if _, err := cli.Mwrite(fd, 0, payload); err != nil {
			log.Fatalf("mwrite %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	fmt.Printf("application cached 6 regions (%d KB each) across the cluster\n", 64)

	// t=25s: ws1's owner touches the keyboard. Reclaim is immediate.
	for sec := 4; sec <= 25; sec++ {
		step(sec)
	}
	fmt.Println("ws1's owner returned: imd drained, host withdrawn from the manager")

	// Regions hosted on ws1 are gone; reads fail over to disk. The
	// paper's contract: one failed access drops every descriptor on
	// that host (§3.1), and the data is still safe in the backing file.
	survived, dropped := 0, 0
	buf := make([]byte, 64<<10)
	for _, fd := range fds {
		_, err := cli.Mread(fd, 0, buf)
		switch {
		case err == nil:
			survived++
		case errors.Is(err, core.ErrNoMem):
			dropped++
		default:
			log.Fatalf("unexpected mread error: %v", err)
		}
	}
	fmt.Printf("after reclaim: %d regions still served from remote memory, %d dropped (served from disk)\n",
		survived, dropped)
	if !bytes.Equal(backing.Bytes()[:64<<10], payload) {
		log.Fatal("backing lost data")
	}
	fmt.Println("backing file intact: no data lost when the workstation was reclaimed")

	s := c.Manager().Stats()
	fmt.Printf("manager: %d idle hosts, %d live regions, %d stale regions dropped\n",
		s.IdleHosts, s.Regions, s.StaleDrops)
}

func waitForHosts(c *cluster.Cluster, want int) {
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		if c.Manager().Stats().IdleHosts >= want {
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("only %d of %d hosts recruited", c.Manager().Stats().IdleHosts, want)
}
