// Out-of-core LU decomposition over Dodo, the paper's lu application
// (§5.2.1) at example scale: a dense matrix stored in column slabs in a
// real backing file, factored through the region-management library
// with the first-in replacement policy the paper selects for
// triangle-scan workloads.
//
// Run with: go run ./examples/outofcore-lu
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"dodo"
	"dodo/internal/apps/lu"
	"dodo/internal/sim"
)

// clk is the example\'s clock: examples run live against real
// daemons, so it is the wall clock.
var clk = sim.WallClock{}

const (
	n        = 128 // matrix dimension
	slabCols = 16  // columns per slab (the paper used 64 at n=8192)
)

// dodoSlabStore stores slabs as Dodo regions through the
// region-management library: hot slabs stay in the local cache, the
// rest live in cluster memory, and everything is backed by the file.
type dodoSlabStore struct {
	cache *dodo.RegionCache
	fds   []int
	rows  int
	cols  int
}

func (s *dodoSlabStore) Slabs() int    { return len(s.fds) }
func (s *dodoSlabStore) SlabCols() int { return s.cols }
func (s *dodoSlabStore) Rows() int     { return s.rows }

func (s *dodoSlabStore) ReadSlab(j int, dst []float64) error {
	buf := make([]byte, len(dst)*8)
	if _, err := s.cache.Cread(s.fds[j], 0, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

func (s *dodoSlabStore) WriteSlab(j int, src []float64) error {
	buf := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := s.cache.Cwrite(s.fds[j], 0, buf)
	return err
}

func main() {
	// Deployment: manager + three donor imds over UDP loopback.
	mgr, err := dodo.ListenManager("127.0.0.1:0", dodo.ManagerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 3; i++ {
		d, err := dodo.ListenIMD("127.0.0.1:0", dodo.IMDConfig{
			ManagerAddr: mgr.Addr(), PoolSize: 4 << 20, Epoch: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
	}
	waitForHosts(mgr, 3)
	cli, err := dodo.Dial("127.0.0.1:0", mgr.Addr(), dodo.ClientConfig{ClientID: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// The matrix lives in a real file, slab by slab.
	dir, err := os.MkdirTemp("", "dodo-lu")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	f, err := os.OpenFile(filepath.Join(dir, "matrix.bin"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	backing, err := dodo.NewFileBacking(f)
	if err != nil {
		log.Fatal(err)
	}

	m := lu.RandomDiagDominant(n, 1999)
	slabs := n / slabCols
	slabBytes := int64(n * slabCols * 8)
	fmt.Printf("matrix: %dx%d doubles, %d slabs of %d columns (%d KB each)\n",
		n, n, slabs, slabCols, slabBytes>>10)

	// First-in policy: triangle scans re-read early slabs the most, so
	// the first regions cached locally are the right ones to keep
	// (§4.5, after Uysal et al.).
	policy, err := dodo.NewPolicy("first-in")
	if err != nil {
		log.Fatal(err)
	}
	cache := dodo.NewRegionCache(cli, dodo.RegionConfig{
		Capacity:        3 * slabBytes, // room for 3 of 8 slabs locally
		Policy:          policy,
		PromoteOnAccess: true,
	})

	store := &dodoSlabStore{cache: cache, rows: n, cols: slabCols}
	for j := 0; j < slabs; j++ {
		fd, err := cache.Copen(slabBytes, backing, int64(j)*slabBytes)
		if err != nil {
			log.Fatalf("copen slab %d: %v", j, err)
		}
		store.fds = append(store.fds, fd)
	}
	// Load the matrix through the cache (populates file + regions).
	slab := make([]float64, n*slabCols)
	for j := 0; j < slabs; j++ {
		copy(slab, m.Data[j*slabCols*n:(j+1)*slabCols*n])
		if err := store.WriteSlab(j, slab); err != nil {
			log.Fatalf("loading slab %d: %v", j, err)
		}
	}

	start := clk.Now()
	if err := lu.Factor(store); err != nil {
		log.Fatalf("factor: %v", err)
	}
	elapsed := clk.Now().Sub(start)

	// Verify: reassemble LU and check ||L*U - A||.
	packed := lu.NewMatrix(n)
	for j := 0; j < slabs; j++ {
		if err := store.ReadSlab(j, slab); err != nil {
			log.Fatal(err)
		}
		copy(packed.Data[j*slabCols*n:(j+1)*slabCols*n], slab)
	}
	residual := lu.MaxAbsDiff(lu.Reconstruct(packed), m)
	fmt.Printf("factored in %v; max |LU - A| = %.2e\n", elapsed, residual)
	if residual > 1e-8 {
		log.Fatal("factorization incorrect")
	}

	cs := cache.Stats()
	fmt.Printf("region cache: %d local hits, %d KB from remote memory, %d KB from disk, %d evictions (%d to remote)\n",
		cs.LocalHits, cs.RemoteReads>>10, cs.DiskReads>>10, cs.Evictions, cs.RemoteClones)
	for j := 0; j < slabs; j++ {
		if err := cache.Cclose(store.fds[j]); err != nil {
			log.Fatalf("cclose slab %d: %v", j, err)
		}
	}
	fmt.Println("lu: done (regions deleted at completion, as in the paper)")
}

func waitForHosts(mgr *dodo.Manager, want int) {
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		if mgr.Stats().IdleHosts >= want {
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("only %d of %d idle hosts registered", mgr.Stats().IdleHosts, want)
}
