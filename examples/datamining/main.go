// Association-rule mining over Dodo, the paper's dmine application
// (§5.2.1) at example scale: Apriori over a transaction corpus whose
// regions are retained in cluster memory between runs — the second run
// reads everything from remote memory without touching the corpus
// "file" again.
//
// Run with: go run ./examples/datamining
package main

import (
	"fmt"
	"log"
	"time"

	"dodo"
	"dodo/internal/apps/dmine"
	"dodo/internal/sim"
)

// clk is the example\'s clock: examples run live against real
// daemons, so it is the wall clock.
var clk = sim.WallClock{}

const (
	transactions = 4000
	avgBasket    = 8
	items        = 400
	regionBytes  = 64 << 10 // the paper's dmine reads 128 KB; scaled down
)

func main() {
	// Deployment: manager + two donor imds. Keep-alives are slow so the
	// first client's exit does not reclaim its regions before run 2
	// (dmine's persistence pattern; production deployments tune this).
	mgr, err := dodo.ListenManager("127.0.0.1:0", dodo.ManagerConfig{
		KeepAliveInterval: time.Hour,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	for i := 0; i < 2; i++ {
		d, err := dodo.ListenIMD("127.0.0.1:0", dodo.IMDConfig{
			ManagerAddr: mgr.Addr(), PoolSize: 8 << 20, Epoch: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
	}
	waitForHosts(mgr, 2)

	// Build the corpus and serialize it into the backing store.
	corpus := dmine.Generate(dmine.GenConfig{
		Transactions: transactions, AvgSize: avgBasket, Items: items,
		Patterns: 8, PatternLen: 3, Seed: 7,
	})
	blob, err := dmine.EncodeCorpus(corpus)
	if err != nil {
		log.Fatal(err)
	}
	backing := dodo.NewMemBacking(77, len(blob))
	fmt.Printf("corpus: %d transactions, %d KB serialized\n", transactions, len(blob)>>10)

	// Run 1: reads the corpus from the backing store, caching every
	// region in cluster memory; exits WITHOUT mclosing (§5.2.1: "remote
	// memory regions are not deleted at the end of a run").
	run := func(clientAddr string, firstRun bool) {
		cli, err := dodo.Dial(clientAddr, mgr.Addr(), dodo.ClientConfig{ClientID: 1})
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Close()

		regions := (len(blob) + regionBytes - 1) / regionBytes
		data := make([]byte, 0, len(blob))
		buf := make([]byte, regionBytes)
		start := clk.Now()
		for r := 0; r < regions; r++ {
			off := int64(r * regionBytes)
			length := int64(regionBytes)
			if off+length > int64(len(blob)) {
				length = int64(len(blob)) - off
			}
			fd, err := cli.Mopen(length, backing, off)
			if err != nil {
				log.Fatalf("mopen region %d: %v", r, err)
			}
			if firstRun {
				// Populate: write the corpus bytes through to remote
				// memory and the backing store.
				if _, err := cli.Mwrite(fd, 0, blob[off:off+length]); err != nil {
					log.Fatalf("mwrite region %d: %v", r, err)
				}
			}
			n, err := cli.Mread(fd, 0, buf[:length])
			if err != nil {
				log.Fatalf("mread region %d: %v", r, err)
			}
			data = append(data, buf[:n]...)
			retain(fd)
		}
		loaded := clk.Now().Sub(start)

		got, err := dmine.DecodeCorpus(data)
		if err != nil {
			log.Fatalf("corpus corrupted in transit: %v", err)
		}
		res := dmine.Mine(got, transactions/20, 0.6, 3)
		fmt.Printf("%s: corpus loaded in %v (%d Apriori passes, %d frequent 2-sets, %d rules)\n",
			label(firstRun), loaded, res.Passes, len(res.Levels[1]), len(res.Rules))
		st := cli.Stats()
		fmt.Printf("   remote traffic: %d reads (%d KB), %d writes (%d KB)\n",
			st.RemoteReads, st.RemoteReadBytes>>10, st.RemoteWrites, st.RemoteWriteBytes>>10)
		// Exit without Mclose: regions persist in cluster memory.
	}

	run("127.0.0.1:0", true)
	fmt.Println("first client exited; regions retained in cluster memory")
	run("127.0.0.1:0", false) // second run: zero writes, all reads remote

	s := mgr.Stats()
	fmt.Printf("manager: %d regions still cached across %d hosts\n", s.Regions, s.IdleHosts)
}

// retain marks a region descriptor as deliberately left open: dmine
// exits without Mclose so its regions persist in cluster memory for the
// next run (§5.2.1, "remote memory regions are not deleted at the end
// of a run"). Ownership moves to the cluster's keep-alive reclamation.
//
// dodo:transfers(dodofd)
func retain(fd int) { _ = fd }

func label(first bool) string {
	if first {
		return "run 1 (cold)"
	}
	return "run 2 (cached)"
}

func waitForHosts(mgr *dodo.Manager, want int) {
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		if mgr.Stats().IdleHosts >= want {
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("only %d of %d idle hosts registered", mgr.Stats().IdleHosts, want)
}
