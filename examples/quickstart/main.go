// Quickstart: a complete Dodo deployment in one process, over real UDP
// loopback sockets — a central manager, two idle memory daemons, and an
// application using the paper's explicit API (§3.2): mopen, mwrite,
// mread, msync, mclose.
//
// Run with: go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"dodo"
	"dodo/internal/sim"
)

// clk is the example\'s clock: examples run live against real
// daemons, so it is the wall clock.
var clk = sim.WallClock{}

func main() {
	// 1. Central manager daemon (cmd) on an ephemeral UDP port.
	mgr, err := dodo.ListenManager("127.0.0.1:0", dodo.ManagerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer mgr.Close()
	fmt.Printf("central manager on %s\n", mgr.Addr())

	// 2. Two idle memory daemons (imds), each donating a 16 MB pool —
	// stand-ins for idle workstations (a desktop deployment would run
	// dodo-rmd, which forks these only while the owner is away).
	for i := 0; i < 2; i++ {
		d, err := dodo.ListenIMD("127.0.0.1:0", dodo.IMDConfig{
			ManagerAddr: mgr.Addr(),
			PoolSize:    16 << 20,
			Epoch:       1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		fmt.Printf("idle memory daemon on %s (16 MB pool)\n", d.Addr())
	}
	waitForHosts(mgr, 2)

	// 3. The application links the runtime library and dials the
	// manager.
	cli, err := dodo.Dial("127.0.0.1:0", mgr.Addr(), dodo.ClientConfig{ClientID: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Every region is a cache of a byte range of a backing file; writes
	// go to both in parallel (here an in-memory backing keeps the
	// example self-contained — see examples/outofcore-lu for real
	// files).
	backing := dodo.NewMemBacking(1, 1<<20)

	fd, err := cli.Mopen(256<<10, backing, 0)
	if err != nil {
		log.Fatalf("mopen: %v", err)
	}
	fmt.Printf("mopen: region descriptor %d (256 KB)\n", fd)

	payload := bytes.Repeat([]byte("idle memory is just a memory away. "), 256<<10/35+1)[:256<<10]
	n, err := cli.Mwrite(fd, 0, payload)
	if err != nil {
		log.Fatalf("mwrite: %v", err)
	}
	fmt.Printf("mwrite: %d KB written through to remote memory and the backing store\n", n>>10)

	if err := cli.Msync(fd); err != nil {
		log.Fatalf("msync: %v", err)
	}

	got := make([]byte, len(payload))
	n, err = cli.Mread(fd, 0, got)
	if err != nil {
		log.Fatalf("mread: %v", err)
	}
	fmt.Printf("mread: %d KB fetched from remote memory (match: %v)\n", n>>10, bytes.Equal(got, payload))

	// Offset access with the short-read semantics of §3.2.
	tail := make([]byte, 100)
	n, _ = cli.Mread(fd, int64(len(payload))-35, tail)
	fmt.Printf("mread at tail: asked 100 bytes, got %d: %q\n", n, tail[:n])

	if err := cli.Mclose(fd); err != nil {
		log.Fatalf("mclose: %v", err)
	}
	stats := cli.Stats()
	fmt.Printf("done: %d remote reads (%d KB), %d remote writes (%d KB)\n",
		stats.RemoteReads, stats.RemoteReadBytes>>10, stats.RemoteWrites, stats.RemoteWriteBytes>>10)
}

func waitForHosts(mgr *dodo.Manager, want int) {
	deadline := clk.Now().Add(5 * time.Second)
	for clk.Now().Before(deadline) {
		if mgr.Stats().IdleHosts >= want {
			return
		}
		clk.Sleep(20 * time.Millisecond)
	}
	log.Fatalf("only %d of %d idle hosts registered", mgr.Stats().IdleHosts, want)
}
