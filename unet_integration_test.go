package dodo

// Integration test of the paper's headline portability property: the
// same daemons and runtime library run unchanged over the U-Net
// substrate (§4, §4.6) — here the usocket emulation with 1500-byte
// frames, bounded receive rings, and wire loss — as over UDP.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/core"
	"dodo/internal/imd"
	"dodo/internal/manager"
	"dodo/internal/usocket"
)

// unetNode binds one U-Net endpoint on the segment.
func unetNode(t *testing.T, seg *usocket.Segment, mac string) *usocket.UNet {
	t.Helper()
	sock, err := seg.Socket(256, 256)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := usocket.Aton(mac)
	if err != nil {
		t.Fatal(err)
	}
	if err := sock.Bind(addr); err != nil {
		t.Fatal(err)
	}
	tr, err := usocket.NewTransport(sock)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func unetStack(t *testing.T, lossEveryN int) (*manager.Manager, []*imd.Daemon, *core.Client) {
	t.Helper()
	seg := usocket.NewSegment()
	if lossEveryN > 0 {
		seg.SetLoss(lossEveryN)
	}
	ep := bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   6,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
		RecvWindow:    64,
	}
	mgr := manager.New(unetNode(t, seg, "00:00:00:00:00:01"), manager.Config{
		KeepAliveInterval: 300 * time.Millisecond,
		Endpoint:          ep,
	})
	t.Cleanup(func() { mgr.Close() })

	var daemons []*imd.Daemon
	for i := 0; i < 2; i++ {
		mac := fmt.Sprintf("00:00:00:00:01:%02d", i)
		d := imd.New(unetNode(t, seg, mac), imd.Config{
			ManagerAddr:    mgr.Addr(),
			PoolSize:       1 << 20,
			Epoch:          1,
			StatusInterval: 200 * time.Millisecond,
			Endpoint:       ep,
		})
		t.Cleanup(func() { d.Close() })
		daemons = append(daemons, d)
	}
	cli := core.New(unetNode(t, seg, "00:00:00:00:02:01"), core.Config{
		ManagerAddr: mgr.Addr(),
		ClientID:    1,
		Endpoint:    ep,
	})
	t.Cleanup(func() { cli.Close() })

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && mgr.Stats().IdleHosts < 2 {
		time.Sleep(20 * time.Millisecond)
	}
	if mgr.Stats().IdleHosts != 2 {
		t.Fatalf("manager over U-Net sees %d hosts, want 2", mgr.Stats().IdleHosts)
	}
	return mgr, daemons, cli
}

func TestFullStackOverUNet(t *testing.T) {
	_, _, cli := unetStack(t, 0)
	back := NewMemBacking(1, 1<<20)
	// 100 KB region: ~70 U-Net frames per transfer, multiple blast
	// windows.
	fd, err := cli.Mopen(100<<10, back, 0)
	if err != nil {
		t.Fatalf("Mopen over U-Net: %v", err)
	}
	data := make([]byte, 100<<10)
	rand.New(rand.NewSource(1)).Read(data)
	if n, err := cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := cli.Mread(fd, 0, got); err != nil || n != len(data) {
		t.Fatalf("Mread = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("U-Net round trip corrupted data")
	}
	if err := cli.Mclose(fd); err != nil {
		t.Fatal(err)
	}
}

func TestFullStackOverLossyUNet(t *testing.T) {
	// Drop every 40th frame on the wire: the bulk protocol's selective
	// NACKs and the control protocol's retries must still deliver
	// correct data end to end.
	_, _, cli := unetStack(t, 40)
	back := NewMemBacking(2, 1<<20)
	fd, err := cli.Mopen(64<<10, back, 0)
	if err != nil {
		t.Fatalf("Mopen over lossy U-Net: %v", err)
	}
	data := make([]byte, 64<<10)
	rand.New(rand.NewSource(2)).Read(data)
	if _, err := cli.Mwrite(fd, 0, data); err != nil {
		t.Fatalf("Mwrite through loss: %v", err)
	}
	got := make([]byte, len(data))
	n, err := cli.Mread(fd, 0, got)
	if err != nil || n != len(data) {
		t.Fatalf("Mread through loss = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("lossy U-Net corrupted data")
	}
}

func TestUNetReceiveRingOverflowRecovers(t *testing.T) {
	// A tiny receive ring forces overflow drops during blasts; the
	// window negotiation plus NACK recovery must still complete the
	// transfer. This is exactly the failure mode U-Net's bounded
	// endpoint queues create and §4.4's negotiation exists for.
	seg := usocket.NewSegment()
	ep := bulk.Config{
		CallTimeout:   150 * time.Millisecond,
		CallRetries:   6,
		WindowTimeout: 80 * time.Millisecond,
		NackDelay:     30 * time.Millisecond,
		// Advertise fewer packets than the ring holds: honest
		// negotiation.
		RecvWindow:      16,
		TransferRetries: 20,
	}
	mkNode := func(mac string, ring int) *usocket.UNet {
		sock, err := seg.Socket(64, ring)
		if err != nil {
			t.Fatal(err)
		}
		addr, _ := usocket.Aton(mac)
		if err := sock.Bind(addr); err != nil {
			t.Fatal(err)
		}
		tr, err := usocket.NewTransport(sock)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	snd := bulk.NewEndpoint(mkNode("00:00:00:00:00:0a", 64), ep, nil)
	rcv := bulk.NewEndpoint(mkNode("00:00:00:00:00:0b", 24), ep, nil)
	t.Cleanup(func() { snd.Close(); rcv.Close() })

	data := make([]byte, 96<<10)
	rand.New(rand.NewSource(3)).Read(data)
	id := snd.NextTransferID()
	done := make(chan error, 1)
	var got []byte
	go func() {
		var err error
		got, err = rcv.RecvBulk(snd.LocalAddr(), id, 60*time.Second)
		done <- err
	}()
	if err := snd.SendBulk(rcv.LocalAddr(), id, data); err != nil {
		t.Fatalf("SendBulk through ring overflow: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("RecvBulk: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ring-overflow transfer corrupted data")
	}
}
