package dodo

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dodo/internal/bulk"
	"dodo/internal/monitor"
)

func fastEp() EndpointConfig {
	return bulk.Config{
		CallTimeout:   200 * time.Millisecond,
		CallRetries:   4,
		WindowTimeout: 100 * time.Millisecond,
		NackDelay:     40 * time.Millisecond,
	}
}

// TestPublicAPIOverRealUDP is the facade's end-to-end test: manager,
// two imds and a client, all on real UDP loopback sockets, exercising
// the whole paper API surface.
func TestPublicAPIOverRealUDP(t *testing.T) {
	mgr, err := ListenManager("127.0.0.1:0", ManagerConfig{
		KeepAliveInterval: 300 * time.Millisecond,
		Endpoint:          fastEp(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()

	var imds []*IMD
	for i := 0; i < 2; i++ {
		d, err := ListenIMD("127.0.0.1:0", IMDConfig{
			ManagerAddr:    mgr.Addr(),
			PoolSize:       1 << 20,
			Epoch:          1,
			StatusInterval: 200 * time.Millisecond,
			Endpoint:       fastEp(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		imds = append(imds, d)
	}
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && mgr.Stats().IdleHosts < 2 {
		time.Sleep(20 * time.Millisecond)
	}
	if mgr.Stats().IdleHosts != 2 {
		t.Fatalf("manager sees %d idle hosts, want 2", mgr.Stats().IdleHosts)
	}

	cli, err := Dial("127.0.0.1:0", mgr.Addr(), ClientConfig{ClientID: 1, Endpoint: fastEp()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	back := NewMemBacking(1, 1<<20)
	fd, err := cli.Mopen(128<<10, back, 0)
	if err != nil {
		t.Fatalf("Mopen over UDP: %v", err)
	}
	data := bytes.Repeat([]byte("udp-loopback!"), 128<<10/13+1)[:128<<10]
	if n, err := cli.Mwrite(fd, 0, data); err != nil || n != len(data) {
		t.Fatalf("Mwrite = %d, %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := cli.Mread(fd, 0, got); err != nil || n != len(data) {
		t.Fatalf("Mread = %d, %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("UDP round trip corrupted data")
	}
	if ok, err := cli.CheckAlloc(fd); err != nil || !ok {
		t.Fatalf("CheckAlloc = %v, %v", ok, err)
	}
	if err := cli.Msync(fd); err != nil {
		t.Fatalf("Msync: %v", err)
	}
	if err := cli.Mclose(fd); err != nil {
		t.Fatalf("Mclose: %v", err)
	}
	if _, err := cli.Mread(fd, 0, got); !errors.Is(err, ErrInval) {
		t.Fatalf("Mread after Mclose = %v, want ErrInval", err)
	}
}

func TestRegionCacheOverFacade(t *testing.T) {
	mgr, err := ListenManager("127.0.0.1:0", ManagerConfig{
		KeepAliveInterval: time.Hour,
		Endpoint:          fastEp(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	d, err := ListenIMD("127.0.0.1:0", IMDConfig{
		ManagerAddr: mgr.Addr(), PoolSize: 1 << 20, Epoch: 1,
		StatusInterval: 200 * time.Millisecond, Endpoint: fastEp(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cli, err := Dial("127.0.0.1:0", mgr.Addr(), ClientConfig{Endpoint: fastEp()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	policy, err := NewPolicy("first-in")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewRegionCache(cli, RegionConfig{Capacity: 8 << 10, Policy: policy, PromoteOnAccess: true})
	back := NewMemBacking(9, 1<<20)
	// Two regions fit locally; the third goes remote via the live imd.
	var fds []int
	for i := 0; i < 3; i++ {
		fd, err := cache.Copen(4<<10, back, int64(i)*4<<10)
		if err != nil {
			t.Fatalf("Copen %d: %v", i, err)
		}
		payload := bytes.Repeat([]byte{byte(i + 1)}, 4<<10)
		if _, err := cache.Cwrite(fd, 0, payload); err != nil {
			t.Fatalf("Cwrite %d: %v", i, err)
		}
		fds = append(fds, fd)
	}
	for i, fd := range fds {
		got := make([]byte, 4<<10)
		if _, err := cache.Cread(fd, 0, got); err != nil {
			t.Fatalf("Cread %d: %v", i, err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i + 1)}, 4<<10)) {
			t.Fatalf("region %d corrupted", i)
		}
	}
	for _, fd := range fds {
		if err := cache.Cclose(fd); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHarvestLimitExported(t *testing.T) {
	m := monitor.MemSample{Total: 128 << 20, Kernel: 20 << 20, Process: 10 << 20}
	if HarvestLimit(m, -1) == 0 {
		t.Fatal("HarvestLimit = 0 on a mostly idle host")
	}
	if got, want := HarvestLimit(m, -1), monitor.HarvestLimit(m, -1); got != want {
		t.Fatalf("facade disagrees with monitor: %d vs %d", got, want)
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial("not-an-address", "127.0.0.1:1", ClientConfig{}); err == nil {
		t.Fatal("Dial with bad local address succeeded")
	}
	if _, err := ListenManager("999.0.0.1:0", ManagerConfig{}); err == nil {
		t.Fatal("ListenManager with bad address succeeded")
	}
	if _, err := ListenIMD("999.0.0.1:0", IMDConfig{}); err == nil {
		t.Fatal("ListenIMD with bad address succeeded")
	}
}

func TestQueryClusterOverUDP(t *testing.T) {
	mgr, err := ListenManager("127.0.0.1:0", ManagerConfig{
		KeepAliveInterval: time.Hour,
		Endpoint:          fastEp(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	d, err := ListenIMD("127.0.0.1:0", IMDConfig{
		ManagerAddr: mgr.Addr(), PoolSize: 2 << 20, Epoch: 5,
		StatusInterval: 100 * time.Millisecond, Endpoint: fastEp(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && mgr.Stats().IdleHosts < 1 {
		time.Sleep(20 * time.Millisecond)
	}

	cli, err := Dial("127.0.0.1:0", mgr.Addr(), ClientConfig{ClientID: 1, Endpoint: fastEp()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	back := NewMemBacking(3, 1<<20)
	if _, err := cli.Mopen(4096, back, 0); err != nil {
		t.Fatal(err)
	}

	state, err := QueryCluster(mgr.Addr())
	if err != nil {
		t.Fatalf("QueryCluster: %v", err)
	}
	if len(state.Hosts) != 1 {
		t.Fatalf("hosts = %d, want 1", len(state.Hosts))
	}
	h := state.Hosts[0]
	if h.Addr != d.Addr() || h.Epoch != 5 {
		t.Fatalf("host = %+v", h)
	}
	if h.AvailBytes != 2<<20-4096 {
		t.Fatalf("avail = %d, want pool minus one region", h.AvailBytes)
	}
	if state.Regions != 1 || state.Allocs != 1 || state.Clients != 1 {
		t.Fatalf("state = %+v", state)
	}
	if _, err := QueryCluster("127.0.0.1:1"); err == nil {
		t.Fatal("QueryCluster against nothing succeeded")
	}
}
