#!/usr/bin/env sh
# Repository verification: build, standard vet, the repo's own invariant
# suite (cmd/dodo-vet), and the full test suite under the race detector.
# CI runs exactly this script; run it locally before pushing.
set -eux

go build ./...
go vet ./...
go run ./cmd/dodo-vet ./...
go test -race ./...

# Seeded fault-injection sweep: deterministic schedules plus the full
# churn acceptance run. Separate invocation so a hang or flake here is
# attributable to the failure paths, not the unit suites above.
go test -race -run 'TestFaultScheduleDeterministic|TestSeededFaultSweep' -count=2 -timeout 600s ./internal/cluster/
