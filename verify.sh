#!/usr/bin/env sh
# Repository verification: build, standard vet, the repo's own invariant
# suite (cmd/dodo-vet), and the full test suite under the race detector.
# CI runs exactly this script; run it locally before pushing.
set -eux

go build ./...
go vet ./...

# The whole invariant suite, then the whole-program analyzers once more
# by name: the second run exercises the -only selection path and keeps
# the lock-order / buffer-ownership / wire-exhaustiveness / guarded-by
# passes visible in CI logs even if the suite grows.
go run ./cmd/dodo-vet ./...
go run ./cmd/dodo-vet -only lock-order,buffer-ownership,wire-exhaustiveness,guarded-by,resource-lifecycle ./...

go test -race ./...

# Perf trajectory: one pass of every benchmark (-benchtime 1x), parsed
# into a per-PR JSON point. BENCH_seed.json is written once and then
# frozen — it is the baseline the trajectory is measured against, so
# rewriting it on every run would erase the very drift the BENCH_*.json
# series exists to show. Each run appends a BENCH_pr<N>.json point
# instead, N taken from $DODO_PR when the driver exports it and from
# the commit count otherwise. Not a settled measurement — a smoke
# check that the benches still run, plus one point on the trajectory.
[ -f BENCH_seed.json ] || go run ./cmd/dodo-bench -gobench BENCH_seed.json
PR_N="${DODO_PR:-$(git rev-list --count HEAD)}"
go run ./cmd/dodo-bench -gobench "BENCH_pr${PR_N}.json"

# Trajectory comparison against the frozen seed: per-metric deltas with
# REGRESSION markers on >10% ns/op growth. Warn-only — the seed was
# recorded at -benchtime 1x, where a microsecond-scale benchmark is one
# iteration of noise, so its ns/op cannot gate anything honestly.
go run ./cmd/dodo-bench -compare BENCH_seed.json "BENCH_pr${PR_N}.json" \
    || echo "WARN: benchmark drift vs 1x seed (informational, not gating)" >&2

# Region perf gate, for real: the region-cache benchmarks at a
# statistically meaningful benchtime against a baseline frozen the same
# way BENCH_seed.json was — written once, then compared against on
# every run. A >10% ns/op regression on any shared region benchmark
# fails verification.
[ -f BENCH_region_base.json ] || \
    go run ./cmd/dodo-bench -gobench BENCH_region_base.json -pkgs ./internal/region -benchtime 1s
go run ./cmd/dodo-bench -gobench /tmp/bench_region_now.json -pkgs ./internal/region -benchtime 1s
go run ./cmd/dodo-bench -compare BENCH_region_base.json /tmp/bench_region_now.json
rm -f /tmp/bench_region_now.json

# The same suite with the lockcheck runtime compiled in: every
# locks.Mutex acquisition is checked against the declared rank hierarchy
# and panics on inversion, cross-checking the static lock-order pass
# against real schedules.
go test -race -tags lockcheck ./...

# Wire-codec fuzz smoke: ten seconds of coverage-guided frames through
# Decode/Encode round-trip invariants (the seed corpus alone runs as a
# plain test in the suites above).
go test -fuzz=FuzzWireRoundTrip -fuzztime=10s -run '^$' ./internal/wire/

# Concurrent region-cache sweep: the parallel Cread/Cwrite/Cclose/
# Prefetch suite under both the race detector and the lockcheck
# runtime, -count=2 so the coalescing and pipeline tests see more than
# one schedule. Separate invocation so a cache-concurrency regression
# is attributable here, not lost in the whole-tree runs above.
go test -race -run 'TestConcurrent|TestInterleavedSequentialStreams|TestNoPrefetchAfterFailedRead|TestPrefetchWorkerPool' -count=2 -timeout 300s ./internal/region/
go test -race -tags lockcheck -run 'TestConcurrent|TestInterleavedSequentialStreams|TestNoPrefetchAfterFailedRead|TestPrefetchWorkerPool' -count=2 -timeout 300s ./internal/region/

# Seeded fault-injection sweep: deterministic schedules plus the full
# churn acceptance run, including the graceful-reclaim handoff
# acceptance tests (pages hand off to peers on owner return, same seed
# => identical handoff schedule, reclaim mid-bulk-read stays correct)
# and the manager crash-recovery tests (directory rebuilt from imd
# inventory re-reports under a new incarnation, dead-incarnation frames
# fenced, same seed => identical crash/restart schedule).
# Separate invocation so a hang or flake here is attributable to the
# failure paths, not the unit suites above.
go test -race -run 'TestFaultScheduleDeterministic|TestSeededFaultSweep|TestGracefulReclaimHandoff|TestHandoffScheduleDeterministic|TestReclaimDuringBulkRead|TestManagerCrashRecovery|TestManagerCrashScheduleDeterministic|TestIncarnationFencing' -count=2 -timeout 600s ./internal/cluster/
